//! The thread-safe accumulation registry behind the global profiling state.

use crate::hist::{HistSnapshot, Histogram};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// Accumulated statistics for one named timer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimerStat {
    /// Number of recorded intervals.
    pub calls: u64,
    /// Total recorded nanoseconds.
    pub total_ns: u64,
    /// Shortest recorded interval in nanoseconds (0 until the first
    /// record — check `calls` before trusting it).
    pub min_ns: u64,
    /// Longest recorded interval in nanoseconds.
    pub max_ns: u64,
    /// Accumulated work units (e.g. flop estimates); 0 when unused.
    pub units: u64,
}

/// One timer line of a [`Snapshot`], identified by `(kind, name)` — e.g.
/// `("fwd", "matmul")` for forward matmuls or `("phase", "embedding")`.
#[derive(Debug, Clone)]
pub struct TimerRow {
    /// Timer category (`"fwd"`, `"bwd"`, `"phase"`, `"train"`, ...).
    pub kind: &'static str,
    /// Timer name within the category.
    pub name: &'static str,
    /// The accumulated statistics.
    pub stat: TimerStat,
}

/// One counter line of a [`Snapshot`].
#[derive(Debug, Clone)]
pub struct CounterRow {
    /// Counter name (e.g. `"flops.fwd"`).
    pub name: &'static str,
    /// Accumulated value.
    pub value: u64,
}

/// Accumulated floating-point series statistics (count, sum, min, max) —
/// the float analogue of a counter, used for telemetry like per-step
/// attention entropies where the mean and range matter, not a sum alone.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatAcc {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl StatAcc {
    /// Mean of the recorded samples (NaN when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }
}

/// One float-stat line of a [`Snapshot`].
#[derive(Debug, Clone)]
pub struct StatRow {
    /// Stat name (e.g. `"attention.feature.entropy"`).
    pub name: &'static str,
    /// The accumulated statistics.
    pub acc: StatAcc,
}

/// One gauge line of a [`Snapshot`]. A gauge is a *last-value* instrument
/// (current queue depth, per-worker utilization): unlike counters it can go
/// down, and unlike stats only the most recent sample matters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaugeRow {
    /// Gauge name (e.g. `"serve.queue_depth"`).
    pub name: &'static str,
    /// The most recently set value.
    pub value: f64,
}

/// One histogram line of a [`Snapshot`] — a point-in-time copy of a
/// registered [`Histogram`] (see [`crate::hist`]).
#[derive(Debug, Clone)]
pub struct HistRow {
    /// Histogram name (e.g. `"serve.latency_ms"`).
    pub name: &'static str,
    /// The bucketed distribution copy.
    pub hist: HistSnapshot,
}

/// A consistent copy of the registry's contents, timers sorted by total
/// time descending and counters by name.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// All timers, hottest first.
    pub timers: Vec<TimerRow>,
    /// All counters, by name.
    pub counters: Vec<CounterRow>,
    /// All float stats, by name.
    pub stats: Vec<StatRow>,
    /// All gauges (last-value instruments), by name.
    pub gauges: Vec<GaugeRow>,
    /// All registered histograms, by name.
    pub hists: Vec<HistRow>,
}

impl Snapshot {
    /// Sum of all recorded timer nanoseconds of a given `kind` (useful as
    /// the denominator when no external wall time is available).
    pub fn kind_total(&self, kind: &str) -> Duration {
        Duration::from_nanos(
            self.timers
                .iter()
                .filter(|r| r.kind == kind)
                .map(|r| r.stat.total_ns)
                .sum(),
        )
    }

    /// Sum over every recorded timer. Note that nested scopes double-count
    /// wall time; prefer passing a real measured wall duration to
    /// [`crate::render_table`] when one exists.
    pub fn total_timed(&self) -> Duration {
        Duration::from_nanos(self.timers.iter().map(|r| r.stat.total_ns).sum())
    }
}

/// Thread-safe timer/counter accumulator.
///
/// Most code uses the process-wide instance via [`global`], but the type is
/// constructible for tests and for tools that want isolated collection.
/// Keys are `&'static str` pairs so the hot path never allocates.
#[derive(Default)]
pub struct Registry {
    timers: Mutex<HashMap<(&'static str, &'static str), TimerStat>>,
    counters: Mutex<HashMap<&'static str, u64>>,
    stats: Mutex<HashMap<&'static str, StatAcc>>,
    gauges: Mutex<HashMap<&'static str, f64>>,
    // The map is mutex-guarded but recording is not: callers hold an
    // `Arc<Histogram>` and record through its atomics without touching
    // this lock.
    hists: Mutex<HashMap<&'static str, Arc<Histogram>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Records one timed interval under `(kind, name)`, with optional work
    /// `units` (pass 0 when not counting work).
    pub fn record(&self, kind: &'static str, name: &'static str, elapsed: Duration, units: u64) {
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        let mut timers = self.timers.lock().expect("obs timer lock");
        let stat = timers.entry((kind, name)).or_default();
        stat.min_ns = if stat.calls == 0 {
            ns
        } else {
            stat.min_ns.min(ns)
        };
        stat.max_ns = stat.max_ns.max(ns);
        stat.calls += 1;
        stat.total_ns = stat.total_ns.saturating_add(ns);
        stat.units = stat.units.saturating_add(units);
    }

    /// Adds `n` to the named counter.
    pub fn counter_add(&self, name: &'static str, n: u64) {
        let mut counters = self.counters.lock().expect("obs counter lock");
        let v = counters.entry(name).or_insert(0);
        *v = v.saturating_add(n);
    }

    /// Records one float sample into the named stat series. Non-finite
    /// samples are dropped so a single NaN cannot poison an aggregate —
    /// non-finite *detection* is the sentinel/monitor's job, not the
    /// accumulator's.
    pub fn stat_add(&self, name: &'static str, sample: f64) {
        if !sample.is_finite() {
            return;
        }
        let mut stats = self.stats.lock().expect("obs stat lock");
        match stats.entry(name) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let acc = e.get_mut();
                acc.count += 1;
                acc.sum += sample;
                acc.min = acc.min.min(sample);
                acc.max = acc.max.max(sample);
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(StatAcc {
                    count: 1,
                    sum: sample,
                    min: sample,
                    max: sample,
                });
            }
        }
    }

    /// The accumulated series for `name`, if any sample was recorded.
    pub fn stat(&self, name: &str) -> Option<StatAcc> {
        self.stats.lock().expect("obs stat lock").get(name).copied()
    }

    /// Sets the named gauge to `value` (last write wins). Non-finite
    /// values are dropped for the same reason [`Registry::stat_add`] drops
    /// them: one NaN must not poison a dashboard read-out.
    pub fn gauge_set(&self, name: &'static str, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.gauges
            .lock()
            .expect("obs gauge lock")
            .insert(name, value);
    }

    /// The registered histogram named `name`, creating an empty one on
    /// first use. The returned `Arc` records through lock-free atomics;
    /// keep it around instead of re-resolving per sample.
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        Arc::clone(
            self.hists
                .lock()
                .expect("obs hist lock")
                .entry(name)
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// Registers an externally owned histogram under `name` (last
    /// registration wins), so subsystems that record unconditionally into
    /// their own `Arc<Histogram>` — like the serving tier — still show up
    /// in snapshots and the `/metrics` exposition.
    pub fn hist_register(&self, name: &'static str, hist: Arc<Histogram>) {
        self.hists.lock().expect("obs hist lock").insert(name, hist);
    }

    /// A point-in-time copy of the named histogram, if registered.
    pub fn hist(&self, name: &str) -> Option<HistSnapshot> {
        self.hists
            .lock()
            .expect("obs hist lock")
            .get(name)
            .map(|h| h.snapshot())
    }

    /// The current value of the named gauge, if it was ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges
            .lock()
            .expect("obs gauge lock")
            .get(name)
            .copied()
    }

    /// Removes and returns every stat series whose name starts with
    /// `prefix`, sorted by name — used to drain per-epoch telemetry (e.g.
    /// `"attention."`) so each epoch's aggregates start fresh.
    pub fn stat_take_prefix(&self, prefix: &str) -> Vec<StatRow> {
        let mut stats = self.stats.lock().expect("obs stat lock");
        let names: Vec<&'static str> = stats
            .keys()
            .copied()
            .filter(|n| n.starts_with(prefix))
            .collect();
        let mut rows: Vec<StatRow> = names
            .into_iter()
            .map(|name| StatRow {
                name,
                acc: stats.remove(name).expect("present"),
            })
            .collect();
        rows.sort_by(|a, b| a.name.cmp(b.name));
        rows
    }

    /// The accumulated stat for `(kind, name)`, if any interval was
    /// recorded.
    pub fn timer(&self, kind: &str, name: &str) -> Option<TimerStat> {
        self.timers
            .lock()
            .expect("obs timer lock")
            .get(&(kind, name))
            .copied()
    }

    /// The current value of a counter (0 when never written).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .lock()
            .expect("obs counter lock")
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// A consistent copy of everything recorded so far.
    pub fn snapshot(&self) -> Snapshot {
        let mut timers: Vec<TimerRow> = self
            .timers
            .lock()
            .expect("obs timer lock")
            .iter()
            .map(|(&(kind, name), &stat)| TimerRow { kind, name, stat })
            .collect();
        timers.sort_by(|a, b| {
            b.stat
                .total_ns
                .cmp(&a.stat.total_ns)
                .then(a.kind.cmp(b.kind))
                .then(a.name.cmp(b.name))
        });
        let mut counters: Vec<CounterRow> = self
            .counters
            .lock()
            .expect("obs counter lock")
            .iter()
            .map(|(&name, &value)| CounterRow { name, value })
            .collect();
        counters.sort_by(|a, b| a.name.cmp(b.name));
        let mut stats: Vec<StatRow> = self
            .stats
            .lock()
            .expect("obs stat lock")
            .iter()
            .map(|(&name, &acc)| StatRow { name, acc })
            .collect();
        stats.sort_by(|a, b| a.name.cmp(b.name));
        let mut gauges: Vec<GaugeRow> = self
            .gauges
            .lock()
            .expect("obs gauge lock")
            .iter()
            .map(|(&name, &value)| GaugeRow { name, value })
            .collect();
        gauges.sort_by(|a, b| a.name.cmp(b.name));
        let mut hists: Vec<HistRow> = self
            .hists
            .lock()
            .expect("obs hist lock")
            .iter()
            .map(|(&name, h)| HistRow {
                name,
                hist: h.snapshot(),
            })
            .collect();
        hists.sort_by(|a, b| a.name.cmp(b.name));
        Snapshot {
            timers,
            counters,
            stats,
            gauges,
            hists,
        }
    }

    /// Clears all timers, counters, stats, gauges and histograms (e.g.
    /// between profiled runs in one process). Registered histograms are
    /// dropped from the registry, not zeroed — holders of the `Arc` keep
    /// recording into their own copy and can re-register.
    pub fn reset(&self) {
        self.timers.lock().expect("obs timer lock").clear();
        self.counters.lock().expect("obs counter lock").clear();
        self.stats.lock().expect("obs stat lock").clear();
        self.gauges.lock().expect("obs gauge lock").clear();
        self.hists.lock().expect("obs hist lock").clear();
    }
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry every instrumentation site records into.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_calls_time_and_units() {
        let r = Registry::new();
        r.record("fwd", "matmul", Duration::from_micros(5), 100);
        r.record("fwd", "matmul", Duration::from_micros(7), 50);
        let s = r.timer("fwd", "matmul").unwrap();
        assert_eq!(s.calls, 2);
        assert_eq!(s.total_ns, 12_000);
        assert_eq!(s.min_ns, 5_000);
        assert_eq!(s.max_ns, 7_000);
        assert_eq!(s.units, 150);
        assert!(r.timer("bwd", "matmul").is_none());
    }

    #[test]
    fn counters_are_monotonic_and_default_zero() {
        let r = Registry::new();
        assert_eq!(r.counter("flops"), 0);
        r.counter_add("flops", 10);
        r.counter_add("flops", 32);
        assert_eq!(r.counter("flops"), 42);
    }

    #[test]
    fn snapshot_sorts_timers_by_total_desc() {
        let r = Registry::new();
        r.record("fwd", "small", Duration::from_nanos(10), 0);
        r.record("fwd", "big", Duration::from_micros(10), 0);
        r.record("bwd", "mid", Duration::from_nanos(500), 0);
        let snap = r.snapshot();
        let names: Vec<&str> = snap.timers.iter().map(|t| t.name).collect();
        assert_eq!(names, vec!["big", "mid", "small"]);
        assert_eq!(snap.kind_total("fwd"), Duration::from_nanos(10_010));
        assert_eq!(snap.total_timed(), Duration::from_nanos(10_510));
    }

    #[test]
    fn reset_clears_everything() {
        let r = Registry::new();
        r.record("fwd", "x", Duration::from_nanos(1), 0);
        r.counter_add("c", 1);
        r.reset();
        assert!(r.snapshot().timers.is_empty());
        assert_eq!(r.counter("c"), 0);
    }

    #[test]
    fn concurrent_recording_from_scoped_threads_is_lossless() {
        let r = Registry::new();
        let threads = 8;
        let per_thread = 250u64;
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    for _ in 0..per_thread {
                        r.record("fwd", "op", Duration::from_nanos(3), 2);
                        r.counter_add("n", 1);
                    }
                });
            }
        });
        let stat = r.timer("fwd", "op").unwrap();
        assert_eq!(stat.calls, threads * per_thread);
        assert_eq!(stat.total_ns, threads * per_thread * 3);
        assert_eq!(stat.units, threads * per_thread * 2);
        assert_eq!(r.counter("n"), threads * per_thread);
    }

    #[test]
    fn stats_accumulate_mean_min_max_and_drop_nonfinite() {
        let r = Registry::new();
        assert!(r.stat("attention.feature.entropy").is_none());
        r.stat_add("attention.feature.entropy", 2.0);
        r.stat_add("attention.feature.entropy", 4.0);
        r.stat_add("attention.feature.entropy", f64::NAN);
        r.stat_add("attention.feature.entropy", f64::INFINITY);
        let acc = r.stat("attention.feature.entropy").unwrap();
        assert_eq!(acc.count, 2);
        assert_eq!(acc.mean(), 3.0);
        assert_eq!(acc.min, 2.0);
        assert_eq!(acc.max, 4.0);
    }

    #[test]
    fn stat_take_prefix_drains_only_matching_series_sorted() {
        let r = Registry::new();
        r.stat_add("attention.time.entropy", 1.0);
        r.stat_add("attention.feature.entropy", 2.0);
        r.stat_add("grad.norm", 3.0);
        let rows = r.stat_take_prefix("attention.");
        let names: Vec<&str> = rows.iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            vec!["attention.feature.entropy", "attention.time.entropy"]
        );
        assert!(r.stat("attention.time.entropy").is_none(), "drained");
        assert!(r.stat("grad.norm").is_some(), "non-matching stays");
        assert_eq!(r.snapshot().stats.len(), 1);
        r.reset();
        assert!(r.stat("grad.norm").is_none());
    }

    #[test]
    fn gauges_keep_the_last_value_and_drop_nonfinite() {
        let r = Registry::new();
        assert!(r.gauge("serve.queue_depth").is_none());
        r.gauge_set("serve.queue_depth", 4.0);
        r.gauge_set("serve.queue_depth", 2.0);
        assert_eq!(r.gauge("serve.queue_depth"), Some(2.0));
        // a gauge can go back down to zero — it is not a counter
        r.gauge_set("serve.queue_depth", 0.0);
        assert_eq!(r.gauge("serve.queue_depth"), Some(0.0));
        r.gauge_set("serve.queue_depth", f64::NAN);
        assert_eq!(r.gauge("serve.queue_depth"), Some(0.0), "NaN dropped");
        r.gauge_set("serve.worker.0.util", 0.5);
        let snap = r.snapshot();
        let names: Vec<&str> = snap.gauges.iter().map(|g| g.name).collect();
        assert_eq!(names, vec!["serve.queue_depth", "serve.worker.0.util"]);
        r.reset();
        assert!(r.gauge("serve.queue_depth").is_none());
    }

    #[test]
    fn histograms_register_snapshot_and_reset() {
        let r = Registry::new();
        assert!(r.hist("serve.latency_ms").is_none());
        let h = r.histogram("serve.latency_ms");
        h.record(2.0);
        h.record(8.0);
        // get-or-create resolves to the same underlying histogram
        r.histogram("serve.latency_ms").record(4.0);
        let snap = r.hist("serve.latency_ms").unwrap();
        assert_eq!(snap.count, 3);
        assert_eq!(snap.min, 2.0);
        assert_eq!(snap.max, 8.0);
        // externally owned histograms surface through hist_register
        let own = Arc::new(Histogram::new());
        own.record(1.5);
        r.hist_register("serve.batch_size", Arc::clone(&own));
        let names: Vec<&str> = r.snapshot().hists.iter().map(|h| h.name).collect();
        assert_eq!(names, vec!["serve.batch_size", "serve.latency_ms"]);
        r.reset();
        assert!(r.hist("serve.latency_ms").is_none());
        // the owner's Arc survives a registry reset
        assert_eq!(own.count(), 1);
    }

    #[test]
    fn global_is_a_singleton() {
        let a = global() as *const Registry;
        let b = global() as *const Registry;
        assert_eq!(a, b);
    }
}
