//! The thread-safe accumulation registry behind the global profiling state.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// Accumulated statistics for one named timer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimerStat {
    /// Number of recorded intervals.
    pub calls: u64,
    /// Total recorded nanoseconds.
    pub total_ns: u64,
    /// Accumulated work units (e.g. flop estimates); 0 when unused.
    pub units: u64,
}

/// One timer line of a [`Snapshot`], identified by `(kind, name)` — e.g.
/// `("fwd", "matmul")` for forward matmuls or `("phase", "embedding")`.
#[derive(Debug, Clone)]
pub struct TimerRow {
    /// Timer category (`"fwd"`, `"bwd"`, `"phase"`, `"train"`, ...).
    pub kind: &'static str,
    /// Timer name within the category.
    pub name: &'static str,
    /// The accumulated statistics.
    pub stat: TimerStat,
}

/// One counter line of a [`Snapshot`].
#[derive(Debug, Clone)]
pub struct CounterRow {
    /// Counter name (e.g. `"flops.fwd"`).
    pub name: &'static str,
    /// Accumulated value.
    pub value: u64,
}

/// A consistent copy of the registry's contents, timers sorted by total
/// time descending and counters by name.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// All timers, hottest first.
    pub timers: Vec<TimerRow>,
    /// All counters, by name.
    pub counters: Vec<CounterRow>,
}

impl Snapshot {
    /// Sum of all recorded timer nanoseconds of a given `kind` (useful as
    /// the denominator when no external wall time is available).
    pub fn kind_total(&self, kind: &str) -> Duration {
        Duration::from_nanos(
            self.timers
                .iter()
                .filter(|r| r.kind == kind)
                .map(|r| r.stat.total_ns)
                .sum(),
        )
    }

    /// Sum over every recorded timer. Note that nested scopes double-count
    /// wall time; prefer passing a real measured wall duration to
    /// [`crate::render_table`] when one exists.
    pub fn total_timed(&self) -> Duration {
        Duration::from_nanos(self.timers.iter().map(|r| r.stat.total_ns).sum())
    }
}

/// Thread-safe timer/counter accumulator.
///
/// Most code uses the process-wide instance via [`global`], but the type is
/// constructible for tests and for tools that want isolated collection.
/// Keys are `&'static str` pairs so the hot path never allocates.
#[derive(Default)]
pub struct Registry {
    timers: Mutex<HashMap<(&'static str, &'static str), TimerStat>>,
    counters: Mutex<HashMap<&'static str, u64>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Records one timed interval under `(kind, name)`, with optional work
    /// `units` (pass 0 when not counting work).
    pub fn record(&self, kind: &'static str, name: &'static str, elapsed: Duration, units: u64) {
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        let mut timers = self.timers.lock().expect("obs timer lock");
        let stat = timers.entry((kind, name)).or_default();
        stat.calls += 1;
        stat.total_ns = stat.total_ns.saturating_add(ns);
        stat.units = stat.units.saturating_add(units);
    }

    /// Adds `n` to the named counter.
    pub fn counter_add(&self, name: &'static str, n: u64) {
        let mut counters = self.counters.lock().expect("obs counter lock");
        let v = counters.entry(name).or_insert(0);
        *v = v.saturating_add(n);
    }

    /// The accumulated stat for `(kind, name)`, if any interval was
    /// recorded.
    pub fn timer(&self, kind: &str, name: &str) -> Option<TimerStat> {
        self.timers
            .lock()
            .expect("obs timer lock")
            .get(&(kind, name))
            .copied()
    }

    /// The current value of a counter (0 when never written).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .lock()
            .expect("obs counter lock")
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// A consistent copy of everything recorded so far.
    pub fn snapshot(&self) -> Snapshot {
        let mut timers: Vec<TimerRow> = self
            .timers
            .lock()
            .expect("obs timer lock")
            .iter()
            .map(|(&(kind, name), &stat)| TimerRow { kind, name, stat })
            .collect();
        timers.sort_by(|a, b| {
            b.stat
                .total_ns
                .cmp(&a.stat.total_ns)
                .then(a.kind.cmp(b.kind))
                .then(a.name.cmp(b.name))
        });
        let mut counters: Vec<CounterRow> = self
            .counters
            .lock()
            .expect("obs counter lock")
            .iter()
            .map(|(&name, &value)| CounterRow { name, value })
            .collect();
        counters.sort_by(|a, b| a.name.cmp(b.name));
        Snapshot { timers, counters }
    }

    /// Clears all timers and counters (e.g. between profiled runs in one
    /// process).
    pub fn reset(&self) {
        self.timers.lock().expect("obs timer lock").clear();
        self.counters.lock().expect("obs counter lock").clear();
    }
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry every instrumentation site records into.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_calls_time_and_units() {
        let r = Registry::new();
        r.record("fwd", "matmul", Duration::from_micros(5), 100);
        r.record("fwd", "matmul", Duration::from_micros(7), 50);
        let s = r.timer("fwd", "matmul").unwrap();
        assert_eq!(s.calls, 2);
        assert_eq!(s.total_ns, 12_000);
        assert_eq!(s.units, 150);
        assert!(r.timer("bwd", "matmul").is_none());
    }

    #[test]
    fn counters_are_monotonic_and_default_zero() {
        let r = Registry::new();
        assert_eq!(r.counter("flops"), 0);
        r.counter_add("flops", 10);
        r.counter_add("flops", 32);
        assert_eq!(r.counter("flops"), 42);
    }

    #[test]
    fn snapshot_sorts_timers_by_total_desc() {
        let r = Registry::new();
        r.record("fwd", "small", Duration::from_nanos(10), 0);
        r.record("fwd", "big", Duration::from_micros(10), 0);
        r.record("bwd", "mid", Duration::from_nanos(500), 0);
        let snap = r.snapshot();
        let names: Vec<&str> = snap.timers.iter().map(|t| t.name).collect();
        assert_eq!(names, vec!["big", "mid", "small"]);
        assert_eq!(snap.kind_total("fwd"), Duration::from_nanos(10_010));
        assert_eq!(snap.total_timed(), Duration::from_nanos(10_510));
    }

    #[test]
    fn reset_clears_everything() {
        let r = Registry::new();
        r.record("fwd", "x", Duration::from_nanos(1), 0);
        r.counter_add("c", 1);
        r.reset();
        assert!(r.snapshot().timers.is_empty());
        assert_eq!(r.counter("c"), 0);
    }

    #[test]
    fn concurrent_recording_from_scoped_threads_is_lossless() {
        let r = Registry::new();
        let threads = 8;
        let per_thread = 250u64;
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    for _ in 0..per_thread {
                        r.record("fwd", "op", Duration::from_nanos(3), 2);
                        r.counter_add("n", 1);
                    }
                });
            }
        });
        let stat = r.timer("fwd", "op").unwrap();
        assert_eq!(stat.calls, threads * per_thread);
        assert_eq!(stat.total_ns, threads * per_thread * 3);
        assert_eq!(stat.units, threads * per_thread * 2);
        assert_eq!(r.counter("n"), threads * per_thread);
    }

    #[test]
    fn global_is_a_singleton() {
        let a = global() as *const Registry;
        let b = global() as *const Registry;
        assert_eq!(a, b);
    }
}
