//! Structured run traces: one JSON object per line (JSONL), written through
//! a process-global sink.
//!
//! The schema is flat and self-describing: every line carries an `"ev"`
//! key naming the event kind, then event-specific fields. Producers build
//! events with [`TraceEvent::new`] + [`TraceEvent::with`]; the hand-rolled
//! serializer keeps this crate std-only. A minimal [`parse_json_line`]
//! reader is provided for tests and for tools that post-process traces.
//!
//! Event kinds emitted by the workspace (see `docs/PROFILING.md`):
//!
//! | `ev` | producer | fields |
//! |---|---|---|
//! | `epoch` | `elda-nn::train` | `epoch`, `mean_loss`, `batches`, `mean_grad_norm`, `wall_ms`, `samples_per_s` |
//! | `batch` | `elda-nn::train` | `epoch`, `batch`, `loss`, `grad_norm`, `wall_ms` |
//! | `op` | `elda-cli` (registry dump) | `kind`, `op`, `calls`, `total_ms`, `mean_us`, `units` |
//! | `counter` | `elda-cli` (registry dump) | `name`, `value` |
//! | `run` | `elda-cli` | `wall_ms`, plus run metadata (`model`, `epochs`, ...) |
//! | `val` | `elda-nn::train` | `epoch`, `score` |
//! | `health` | `elda-obs::health` | `epoch`, `status`, `subject`, `detail` |
//! | `tensor_stats` | `elda-nn::train` | `epoch`, `name`, `n`, `nan`, `inf`, `min`, `max`, `mean`, `std`, `hist` |
//! | `attention` | `elda-nn::train` (stats from `elda-core`) | `epoch`, `name`, `mean`, `min`, `max`, `n` |
//! | `recovery` | `elda-nn::train` | `epoch`, `retry`, `old_lr`, `new_lr`, `cause`, optional `rollback_to` |
//! | `stat` | `elda-cli` (registry dump) | `name`, `n`, `mean`, `min`, `max` |
//! | `hist` | `elda-cli` (registry dump) | `name`, `n`, `mean`, `min`, `max`, `p50`, `p95`, `p99` |
//! | `span` | `elda-cli::serve` (sampled) | `seq`, `worker`, `batch`, `admission_ms`, `queue_ms`, `batch_ms`, `score_ms`, `reply_ms`, `total_ms` |

use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::{Mutex, Once};

/// A scalar field value of a trace event.
#[derive(Debug, Clone, PartialEq)]
pub enum Field {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point; non-finite values serialize as `null`.
    F64(f64),
    /// Single-precision float, serialized at `f32` precision (non-finite
    /// values become `null`). Note [`parse_json_line`] reads every
    /// fractional number back as [`Field::F64`].
    F32(f32),
    /// String (JSON-escaped on write).
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl From<u64> for Field {
    fn from(v: u64) -> Field {
        Field::U64(v)
    }
}
impl From<usize> for Field {
    fn from(v: usize) -> Field {
        Field::U64(v as u64)
    }
}
impl From<i64> for Field {
    fn from(v: i64) -> Field {
        Field::I64(v)
    }
}
impl From<f64> for Field {
    fn from(v: f64) -> Field {
        Field::F64(v)
    }
}
impl From<f32> for Field {
    fn from(v: f32) -> Field {
        Field::F32(v)
    }
}
impl From<&str> for Field {
    fn from(v: &str) -> Field {
        Field::Str(v.to_string())
    }
}
impl From<String> for Field {
    fn from(v: String) -> Field {
        Field::Str(v)
    }
}
impl From<bool> for Field {
    fn from(v: bool) -> Field {
        Field::Bool(v)
    }
}

/// One structured trace record; serializes to a single JSONL line.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event kind, written as the leading `"ev"` field.
    pub kind: String,
    /// Ordered `(key, value)` fields following `"ev"`.
    pub fields: Vec<(String, Field)>,
}

impl TraceEvent {
    /// A new event of the given kind.
    pub fn new(kind: &str) -> TraceEvent {
        TraceEvent {
            kind: kind.to_string(),
            fields: Vec::new(),
        }
    }

    /// Appends a field (builder style).
    pub fn with(mut self, key: &str, value: impl Into<Field>) -> TraceEvent {
        self.fields.push((key.to_string(), value.into()));
        self
    }

    /// The value of the first field named `key`, if present.
    pub fn get(&self, key: &str) -> Option<&Field> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Reads field `key` as a number, converting any numeric [`Field`]
    /// variant to `f64`; `None` when missing or non-numeric.
    pub fn num(&self, key: &str) -> Option<f64> {
        match self.get(key)? {
            Field::U64(n) => Some(*n as f64),
            Field::I64(n) => Some(*n as f64),
            Field::F64(x) => Some(*x),
            Field::F32(x) => Some(*x as f64),
            _ => None,
        }
    }

    /// Reads field `key` as a string; `None` when missing or non-string.
    pub fn str_field(&self, key: &str) -> Option<&str> {
        match self.get(key)? {
            Field::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Serializes to one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64);
        out.push_str("{\"ev\":");
        write_json_str(&mut out, &self.kind);
        for (k, v) in &self.fields {
            out.push(',');
            write_json_str(&mut out, k);
            out.push(':');
            match v {
                Field::U64(n) => {
                    let _ = write!(out, "{n}");
                }
                Field::I64(n) => {
                    let _ = write!(out, "{n}");
                }
                Field::F64(x) => {
                    if x.is_finite() {
                        let _ = write!(out, "{x}");
                    } else {
                        out.push_str("null");
                    }
                }
                Field::F32(x) => {
                    if x.is_finite() {
                        let _ = write!(out, "{x}");
                    } else {
                        out.push_str("null");
                    }
                }
                Field::Str(s) => write_json_str(&mut out, s),
                Field::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            }
        }
        out.push('}');
        out
    }
}

fn write_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSONL writer around any `Write` destination.
///
/// Lines are buffered; [`TraceSink::flush`] flushes them explicitly, and
/// the sink also **flushes on drop** (poison-tolerant), so a run that exits
/// early or unwinds after [`close_sink`]-less usage still leaves complete
/// lines behind. For panics that never drop the global sink (statics don't
/// unwind), [`install_sink`] registers a panic hook that flushes it. The
/// sink is internally locked, so concurrent [`emit`]s interleave at line
/// granularity — JSONL stays well-formed under threaded training.
pub struct TraceSink {
    out: Mutex<BufWriter<Box<dyn Write + Send>>>,
}

impl TraceSink {
    /// A sink writing to an arbitrary destination (files, `Vec<u8>` in
    /// tests, ...).
    pub fn new(dest: Box<dyn Write + Send>) -> TraceSink {
        TraceSink {
            out: Mutex::new(BufWriter::new(dest)),
        }
    }

    /// A sink writing (truncating) the file at `path`.
    pub fn to_file(path: &Path) -> std::io::Result<TraceSink> {
        Ok(TraceSink::new(Box::new(File::create(path)?)))
    }

    /// Writes one event as one line.
    pub fn write_event(&self, ev: &TraceEvent) {
        let mut out = self.out.lock().expect("trace sink lock");
        let _ = writeln!(out, "{}", ev.to_json());
    }

    /// Flushes buffered lines to the destination. Tolerates a poisoned
    /// lock (a writer thread that panicked mid-line) — flushing whatever
    /// made it into the buffer beats losing the trace.
    pub fn flush(&self) {
        let mut out = match self.out.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        let _ = out.flush();
    }

    /// Best-effort flush that never blocks: used from the panic hook, where
    /// waiting on a lock the panicking thread may hold would deadlock.
    fn try_flush(&self) {
        if let Ok(mut out) = self.out.try_lock() {
            let _ = out.flush();
        }
    }
}

impl Drop for TraceSink {
    fn drop(&mut self) {
        // `get_mut` needs no locking (we hold `&mut self`) and hands the
        // buffer back even when the mutex was poisoned.
        let out = match self.out.get_mut() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        let _ = out.flush();
    }
}

static SINK: Mutex<Option<TraceSink>> = Mutex::new(None);
static PANIC_FLUSH: Once = Once::new();

/// Registers (once per process) a panic hook that flushes the installed
/// global sink before delegating to the previous hook, so traces from
/// panicking runs are not truncated mid-buffer.
fn install_panic_flush() {
    PANIC_FLUSH.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if let Ok(slot) = SINK.try_lock() {
                if let Some(sink) = slot.as_ref() {
                    sink.try_flush();
                }
            }
            prev(info);
        }));
    });
}

/// Installs `sink` as the process-global trace destination, replacing (and
/// flushing) any previous one. Also registers a panic hook that flushes
/// the global sink, so even a panicking run leaves a readable trace.
pub fn install_sink(sink: TraceSink) {
    install_panic_flush();
    let mut slot = SINK.lock().expect("trace sink slot");
    if let Some(old) = slot.take() {
        old.flush();
    }
    *slot = Some(sink);
}

/// Convenience: installs a file sink at `path` (created/truncated).
pub fn install_sink_to_file(path: &Path) -> std::io::Result<()> {
    install_sink(TraceSink::to_file(path)?);
    Ok(())
}

/// Writes one event to the installed sink, if any. Cheap no-op (one mutex
/// lock on an empty slot) when no sink is installed; producers on per-op
/// hot paths should gate on [`crate::enabled`] instead of emitting per op.
pub fn emit(ev: &TraceEvent) {
    let slot = SINK.lock().expect("trace sink slot");
    if let Some(sink) = slot.as_ref() {
        sink.write_event(ev);
    }
}

/// Flushes and removes the installed sink (end of a profiled run).
pub fn close_sink() {
    let mut slot = SINK.lock().expect("trace sink slot");
    if let Some(sink) = slot.take() {
        sink.flush();
    }
}

/// Flushes the installed sink without removing it. Long-lived processes
/// (the serving tier) call this at quiescent points — e.g. the serve
/// `shutdown` command — so tail events reach disk even though the global
/// sink itself is never dropped.
pub fn flush_sink() {
    let slot = SINK.lock().expect("trace sink slot");
    if let Some(sink) = slot.as_ref() {
        sink.flush();
    }
}

/// Parses one flat JSONL line produced by [`TraceEvent::to_json`] back into
/// an event. Supports exactly the subset this module writes — flat objects
/// of string / number / bool / null scalars — and returns `None` on
/// anything else. Intended for round-trip tests and small trace tools, not
/// as a general JSON parser.
pub fn parse_json_line(line: &str) -> Option<TraceEvent> {
    let mut p = Parser {
        bytes: line.trim().as_bytes(),
        pos: 0,
    };
    p.expect(b'{')?;
    let mut kind = None;
    let mut fields = Vec::new();
    loop {
        p.skip_ws();
        let key = p.parse_string()?;
        p.skip_ws();
        p.expect(b':')?;
        p.skip_ws();
        let value = p.parse_scalar()?;
        if key == "ev" {
            match value {
                Some(Field::Str(s)) => kind = Some(s),
                _ => return None,
            }
        } else if let Some(v) = value {
            fields.push((key, v));
        }
        p.skip_ws();
        match p.next()? {
            b',' => continue,
            b'}' => break,
            _ => return None,
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return None;
    }
    Some(TraceEvent {
        kind: kind?,
        fields,
    })
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }
    fn next(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }
    fn expect(&mut self, b: u8) -> Option<()> {
        (self.next()? == b).then_some(())
    }
    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t')) {
            self.pos += 1;
        }
    }

    fn parse_string(&mut self) -> Option<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.next()? {
                b'"' => return Some(s),
                b'\\' => match self.next()? {
                    b'"' => s.push('"'),
                    b'\\' => s.push('\\'),
                    b'n' => s.push('\n'),
                    b'r' => s.push('\r'),
                    b't' => s.push('\t'),
                    b'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = (self.next()? as char).to_digit(16)?;
                            code = code * 16 + d;
                        }
                        s.push(char::from_u32(code)?);
                    }
                    _ => return None,
                },
                b => {
                    // Re-assemble multi-byte UTF-8 sequences.
                    let start = self.pos - 1;
                    let width = utf8_width(b)?;
                    self.pos = start + width;
                    s.push_str(std::str::from_utf8(self.bytes.get(start..self.pos)?).ok()?);
                }
            }
        }
    }

    /// Parses a scalar; `Ok(None)`-style `Some(None)` means JSON `null`.
    fn parse_scalar(&mut self) -> Option<Option<Field>> {
        match self.peek()? {
            b'"' => Some(Some(Field::Str(self.parse_string()?))),
            b't' => self.literal(b"true").map(|()| Some(Field::Bool(true))),
            b'f' => self.literal(b"false").map(|()| Some(Field::Bool(false))),
            b'n' => self.literal(b"null").map(|()| None),
            _ => {
                let start = self.pos;
                while matches!(
                    self.peek(),
                    Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
                ) {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.bytes[start..self.pos]).ok()?;
                if text.bytes().all(|b| b.is_ascii_digit()) {
                    text.parse::<u64>().ok().map(|n| Some(Field::U64(n)))
                } else if text.bytes().all(|b| b.is_ascii_digit() || b == b'-') {
                    text.parse::<i64>().ok().map(|n| Some(Field::I64(n)))
                } else {
                    text.parse::<f64>().ok().map(|x| Some(Field::F64(x)))
                }
            }
        }
    }

    fn literal(&mut self, lit: &[u8]) -> Option<()> {
        if self.bytes.get(self.pos..self.pos + lit.len())? == lit {
            self.pos += lit.len();
            Some(())
        } else {
            None
        }
    }
}

fn utf8_width(first: u8) -> Option<usize> {
    match first {
        0x00..=0x7f => Some(1),
        0xc0..=0xdf => Some(2),
        0xe0..=0xef => Some(3),
        0xf0..=0xf7 => Some(4),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex as StdMutex};

    #[test]
    fn event_serializes_in_field_order() {
        let ev = TraceEvent::new("epoch")
            .with("epoch", 3usize)
            .with("mean_loss", 0.25f32)
            .with("note", "ok");
        assert_eq!(
            ev.to_json(),
            r#"{"ev":"epoch","epoch":3,"mean_loss":0.25,"note":"ok"}"#
        );
    }

    #[test]
    fn strings_are_escaped() {
        let ev = TraceEvent::new("run").with("path", "a\"b\\c\nd\te");
        assert_eq!(
            ev.to_json(),
            "{\"ev\":\"run\",\"path\":\"a\\\"b\\\\c\\nd\\te\"}"
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        let ev = TraceEvent::new("x")
            .with("nan", f64::NAN)
            .with("ok", 1.5f64);
        assert_eq!(ev.to_json(), r#"{"ev":"x","nan":null,"ok":1.5}"#);
    }

    #[test]
    fn jsonl_roundtrips_through_the_parser() {
        let ev = TraceEvent::new("op")
            .with("kind", "fwd")
            .with("op", "matmul")
            .with("calls", 1234u64)
            .with("total_ms", 56.75f64)
            .with("neg", -3i64)
            .with("escaped", "tab\t\"quote\" π")
            .with("flag", true);
        let parsed = parse_json_line(&ev.to_json()).expect("parses");
        assert_eq!(parsed, ev);
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        for bad in [
            "",
            "{",
            "not json",
            r#"{"no_ev":1}"#,
            r#"{"ev":"x","nested":{"a":1}}"#,
            r#"{"ev":"x","arr":[1,2]}"#,
            r#"{"ev":"x"} trailing"#,
        ] {
            assert!(parse_json_line(bad).is_none(), "accepted {bad:?}");
        }
    }

    #[test]
    fn null_fields_parse_as_omitted() {
        let parsed = parse_json_line(r#"{"ev":"x","nan":null,"v":2}"#).unwrap();
        assert_eq!(parsed.fields, vec![("v".to_string(), Field::U64(2))]);
    }

    /// A `Write` destination capturing everything for inspection.
    #[derive(Clone, Default)]
    struct Capture(Arc<StdMutex<Vec<u8>>>);
    impl std::io::Write for Capture {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn sink_writes_one_line_per_event_and_roundtrips() {
        let cap = Capture::default();
        let sink = TraceSink::new(Box::new(cap.clone()));
        let events = [
            TraceEvent::new("epoch")
                .with("epoch", 0usize)
                .with("wall_ms", 10.5f64),
            TraceEvent::new("epoch")
                .with("epoch", 1usize)
                .with("wall_ms", 9.25f64),
            TraceEvent::new("run").with("wall_ms", 19.5f64),
        ];
        for ev in &events {
            sink.write_event(ev);
        }
        sink.flush();
        let text = String::from_utf8(cap.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for (line, ev) in lines.iter().zip(&events) {
            assert_eq!(&parse_json_line(line).expect("valid JSONL"), ev);
        }
    }

    /// Tests touching the process-global sink must not interleave, or one
    /// test's events land in another's destination.
    static GLOBAL_SINK_TESTS: StdMutex<()> = StdMutex::new(());

    #[test]
    fn field_accessors_read_numbers_and_strings() {
        let ev = TraceEvent::new("epoch")
            .with("epoch", 3usize)
            .with("delta", -2i64)
            .with("loss", 0.5f32)
            .with("wall_ms", 10.25f64)
            .with("name", "w")
            .with("flag", true);
        assert_eq!(ev.num("epoch"), Some(3.0));
        assert_eq!(ev.num("delta"), Some(-2.0));
        assert_eq!(ev.num("loss"), Some(0.5));
        assert_eq!(ev.num("wall_ms"), Some(10.25));
        assert_eq!(ev.num("name"), None);
        assert_eq!(ev.num("missing"), None);
        assert_eq!(ev.str_field("name"), Some("w"));
        assert_eq!(ev.str_field("epoch"), None);
        assert_eq!(ev.get("flag"), Some(&Field::Bool(true)));
    }

    #[test]
    fn dropping_a_sink_flushes_buffered_lines() {
        let cap = Capture::default();
        {
            let sink = TraceSink::new(Box::new(cap.clone()));
            sink.write_event(&TraceEvent::new("epoch").with("epoch", 0usize));
            // no explicit flush — Drop must do it
        }
        let text = String::from_utf8(cap.0.lock().unwrap().clone()).unwrap();
        assert_eq!(text.lines().count(), 1);
        assert!(parse_json_line(text.lines().next().unwrap()).is_some());
    }

    #[test]
    fn panic_hook_flushes_the_installed_sink() {
        let _serial = GLOBAL_SINK_TESTS.lock().unwrap_or_else(|p| p.into_inner());
        let cap = Capture::default();
        install_sink(TraceSink::new(Box::new(cap.clone())));
        emit(&TraceEvent::new("epoch").with("epoch", 7usize));
        assert!(
            cap.0.lock().unwrap().is_empty(),
            "line should still sit in the BufWriter"
        );
        let unwound = std::panic::catch_unwind(|| panic!("boom"));
        assert!(unwound.is_err());
        let text = String::from_utf8(cap.0.lock().unwrap().clone()).unwrap();
        close_sink();
        assert_eq!(text.lines().count(), 1, "panic hook flushed the buffer");
        let ev = parse_json_line(text.lines().next().unwrap()).unwrap();
        assert_eq!(ev.num("epoch"), Some(7.0));
    }

    #[test]
    fn flush_sink_persists_without_uninstalling() {
        let _serial = GLOBAL_SINK_TESTS.lock().unwrap_or_else(|p| p.into_inner());
        let cap = Capture::default();
        install_sink(TraceSink::new(Box::new(cap.clone())));
        emit(&TraceEvent::new("span").with("seq", 1usize));
        flush_sink();
        let text = String::from_utf8(cap.0.lock().unwrap().clone()).unwrap();
        assert_eq!(text.lines().count(), 1, "flush pushed the buffered line");
        // the sink is still installed: later events keep flowing
        emit(&TraceEvent::new("span").with("seq", 2usize));
        close_sink();
        let text = String::from_utf8(cap.0.lock().unwrap().clone()).unwrap();
        assert_eq!(text.lines().count(), 2);
    }

    #[test]
    fn file_sink_roundtrips_via_install_emit_close() {
        let _serial = GLOBAL_SINK_TESTS.lock().unwrap_or_else(|p| p.into_inner());
        let path = std::env::temp_dir().join(format!(
            "elda-obs-trace-{}-{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        install_sink_to_file(&path).unwrap();
        emit(
            &TraceEvent::new("run")
                .with("model", "ELDA-Net")
                .with("epochs", 2usize),
        );
        close_sink();
        // After close, emits are dropped silently.
        emit(&TraceEvent::new("run").with("ignored", true));
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1);
        let ev = parse_json_line(lines[0]).unwrap();
        assert_eq!(ev.kind, "run");
        assert_eq!(
            ev.fields,
            vec![
                ("model".to_string(), Field::Str("ELDA-Net".into())),
                ("epochs".to_string(), Field::U64(2)),
            ]
        );
    }
}
