//! Prometheus text exposition (format 0.0.4) for registry snapshots.
//!
//! [`render_prometheus`] turns a [`Snapshot`] into the plain-text format
//! every Prometheus-compatible scraper understands: counters and gauges
//! as single samples, [`crate::hist::Histogram`]s as native histogram
//! metrics (cumulative `_bucket{le="..."}` series plus `_sum`/`_count`),
//! and float stats as `summary`-style `_sum`/`_count` pairs with exact
//! `_min`/`_max` companions. Only non-empty buckets are emitted — a
//! 514-bucket histogram typically renders as a few dozen lines — which
//! is valid exposition: cumulative counts at omitted boundaries equal
//! the previous emitted value.
//!
//! Metric names are prefixed `elda_` and sanitized to the
//! `[a-zA-Z0-9_]` alphabet (`serve.latency_ms` → `elda_serve_latency_ms`).
//! The per-worker utilization gauges (`serve.worker.<i>.util`) are the
//! one labelled family: they render as
//! `elda_serve_worker_util{worker="<i>"}` so dashboards can aggregate
//! across workers instead of pattern-matching metric names.

use crate::hist::HistSnapshot;
use crate::registry::Snapshot;

/// Sanitizes a registry name into a Prometheus metric name with the
/// `elda_` prefix: every character outside `[a-zA-Z0-9_]` becomes `_`.
pub fn metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 5);
    out.push_str("elda_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Splits a `serve.worker.<i>.util` gauge name into its worker index,
/// when it is one.
fn worker_util_index(name: &str) -> Option<&str> {
    let idx = name.strip_prefix("serve.worker.")?.strip_suffix(".util")?;
    (!idx.is_empty() && idx.bytes().all(|b| b.is_ascii_digit())).then_some(idx)
}

/// Formats a sample value: finite shortest-round-trip, `+Inf`/`-Inf`
/// and `NaN` in the spelling the text format requires.
fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".into()
    } else if v == f64::INFINITY {
        "+Inf".into()
    } else if v == f64::NEG_INFINITY {
        "-Inf".into()
    } else {
        format!("{v}")
    }
}

/// Renders one histogram family: cumulative non-empty buckets, `+Inf`,
/// `_sum` and `_count`.
fn render_hist(out: &mut String, name: &str, h: &HistSnapshot) {
    let base = metric_name(name);
    out.push_str(&format!("# TYPE {base} histogram\n"));
    let mut cum = 0u64;
    for (idx, &n) in h.buckets.iter().enumerate() {
        if n == 0 {
            continue;
        }
        cum += n;
        let (_, hi) = crate::hist::bucket_bounds(idx);
        if hi.is_finite() {
            out.push_str(&format!(
                "{base}_bucket{{le=\"{}\"}} {cum}\n",
                fmt_value(hi)
            ));
        }
    }
    out.push_str(&format!("{base}_bucket{{le=\"+Inf\"}} {}\n", h.count));
    out.push_str(&format!("{base}_sum {}\n", fmt_value(h.sum)));
    out.push_str(&format!("{base}_count {}\n", h.count));
}

/// Renders a registry snapshot as Prometheus text exposition. Families
/// appear in a stable order (counters, gauges, stats, histograms, each
/// sorted by name inside the snapshot), so diffs between scrapes are
/// line-stable.
pub fn render_prometheus(snap: &Snapshot) -> String {
    let mut out = String::new();
    for c in &snap.counters {
        let name = metric_name(c.name);
        out.push_str(&format!("# TYPE {name} counter\n{name} {}\n", c.value));
    }
    // gauges: the worker-util family renders labelled, everything else 1:1
    let mut util_header = false;
    for g in &snap.gauges {
        if let Some(idx) = worker_util_index(g.name) {
            if !util_header {
                out.push_str("# TYPE elda_serve_worker_util gauge\n");
                util_header = true;
            }
            out.push_str(&format!(
                "elda_serve_worker_util{{worker=\"{idx}\"}} {}\n",
                fmt_value(g.value)
            ));
        } else {
            let name = metric_name(g.name);
            out.push_str(&format!(
                "# TYPE {name} gauge\n{name} {}\n",
                fmt_value(g.value)
            ));
        }
    }
    for s in &snap.stats {
        let name = metric_name(s.name);
        out.push_str(&format!(
            "# TYPE {name} summary\n{name}_sum {}\n{name}_count {}\n",
            fmt_value(s.acc.sum),
            s.acc.count
        ));
        out.push_str(&format!(
            "# TYPE {name}_min gauge\n{name}_min {}\n# TYPE {name}_max gauge\n{name}_max {}\n",
            fmt_value(s.acc.min),
            fmt_value(s.acc.max)
        ));
    }
    for h in &snap.hists {
        render_hist(&mut out, h.name, &h.hist);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;
    use crate::registry::Registry;

    /// A minimal validity check for the 0.0.4 text format: every
    /// non-comment line is `name[{labels}] value`, every sample's family
    /// has a preceding `# TYPE`, histogram buckets are cumulative and
    /// end at `+Inf == _count`.
    fn validate(text: &str) {
        assert!(text.ends_with('\n'), "exposition must end with a newline");
        let mut typed: Vec<String> = Vec::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut parts = rest.split(' ');
                typed.push(parts.next().unwrap().to_string());
                let kind = parts.next().unwrap();
                assert!(
                    ["counter", "gauge", "histogram", "summary"].contains(&kind),
                    "bad TYPE {kind}"
                );
                continue;
            }
            assert!(!line.starts_with('#'), "only TYPE comments are emitted");
            let (series, value) = line.rsplit_once(' ').expect("name value");
            let name = series.split('{').next().unwrap();
            assert!(
                name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_'),
                "bad metric name {name}"
            );
            assert!(name.starts_with("elda_"), "unprefixed {name}");
            assert!(
                typed.iter().any(|t| name == *t
                    || name
                        .strip_prefix(t.as_str())
                        .is_some_and(|suf| ["_bucket", "_sum", "_count"].contains(&suf))),
                "sample {name} has no TYPE header"
            );
            if value != "+Inf" && value != "-Inf" && value != "NaN" {
                value
                    .parse::<f64>()
                    .unwrap_or_else(|_| panic!("bad value {value}"));
            }
        }
    }

    #[test]
    fn renders_counters_gauges_stats_and_histograms_validly() {
        let r = Registry::new();
        r.counter_add("serve.requests", 42);
        r.gauge_set("serve.queue.depth", 3.0);
        r.gauge_set("serve.worker.0.util", 0.5);
        r.gauge_set("serve.worker.1.util", 0.75);
        r.stat_add("train.loss", 1.25);
        r.stat_add("train.loss", 0.75);
        let h = r.histogram("serve.latency_ms");
        for v in [0.5, 1.0, 2.0, 2.5, 50.0] {
            h.record(v);
        }
        let text = render_prometheus(&r.snapshot());
        validate(&text);
        assert!(text.contains("# TYPE elda_serve_requests counter\n"));
        assert!(text.contains("elda_serve_requests 42\n"));
        assert!(text.contains("elda_serve_queue_depth 3\n"));
        assert!(text.contains("elda_serve_worker_util{worker=\"0\"} 0.5\n"));
        assert!(text.contains("elda_serve_worker_util{worker=\"1\"} 0.75\n"));
        assert!(text.contains("elda_train_loss_sum 2\n"));
        assert!(text.contains("elda_train_loss_count 2\n"));
        assert!(text.contains("elda_train_loss_min 0.75\n"));
        assert!(text.contains("# TYPE elda_serve_latency_ms histogram\n"));
        assert!(text.contains("elda_serve_latency_ms_bucket{le=\"+Inf\"} 5\n"));
        assert!(text.contains("elda_serve_latency_ms_sum 56\n"));
        assert!(text.contains("elda_serve_latency_ms_count 5\n"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_monotonic() {
        let h = Histogram::new();
        for v in [1.0, 1.0, 2.0, 4.0, 800.0] {
            h.record(v);
        }
        let mut out = String::new();
        render_hist(&mut out, "x", &h.snapshot());
        let mut last_cum = 0u64;
        let mut last_le = f64::NEG_INFINITY;
        let mut bucket_lines = 0;
        for line in out.lines().filter(|l| l.contains("_bucket")) {
            bucket_lines += 1;
            let le_str = line
                .split("le=\"")
                .nth(1)
                .unwrap()
                .split('"')
                .next()
                .unwrap();
            let le = if le_str == "+Inf" {
                f64::INFINITY
            } else {
                le_str.parse::<f64>().unwrap()
            };
            let cum: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(le > last_le, "le must increase: {line}");
            assert!(cum >= last_cum, "cumulative count fell: {line}");
            last_le = le;
            last_cum = cum;
        }
        assert!(bucket_lines >= 4, "non-empty buckets + +Inf expected");
        assert_eq!(last_cum, 5, "+Inf bucket equals count");
        // only non-empty buckets are rendered: far fewer than the grid
        assert!(bucket_lines < 10, "sparse rendering expected: {out}");
    }

    #[test]
    fn names_are_sanitized_and_prefixed() {
        assert_eq!(metric_name("serve.latency_ms"), "elda_serve_latency_ms");
        assert_eq!(metric_name("a-b.c/d"), "elda_a_b_c_d");
        assert_eq!(worker_util_index("serve.worker.12.util"), Some("12"));
        assert_eq!(worker_util_index("serve.worker..util"), None);
        assert_eq!(worker_util_index("serve.worker.x.util"), None);
        assert_eq!(worker_util_index("serve.queue.depth"), None);
    }
}
