#![warn(missing_docs)]
//! # elda-obs
//!
//! The workspace's observability substrate: **scoped timers**, **monotonic
//! counters**, a **thread-safe global registry** and a **JSONL trace sink**,
//! built on `std` alone so every crate — down to `elda-tensor` — can depend
//! on it without pulling in external dependencies.
//!
//! ## Design contract
//!
//! Instrumentation is **off by default** and gated by one global
//! [`Level`]. While off, every instrumentation site costs exactly one
//! relaxed atomic load and nothing else: [`scope()`] returns `None`
//! without reading the clock, and [`counter_add`] / [`TraceEvent`]
//! emission return immediately. Hot loops (the autodiff tape records one
//! timer per op) stay unmeasurably close to their uninstrumented speed.
//!
//! The level splits what arms into two tiers with very different costs:
//!
//! * [`Level::Metrics`] arms the cheap aggregate instruments —
//!   [`counter_add`], [`gauge_set`], [`stat_add`], [`hist_record`] — a
//!   few atomic ops or one short registry lock per call, paid *per
//!   event*. This is what a production scorer runs with
//!   (`elda serve --metrics-addr`): live counters and histograms without
//!   touching the per-op hot path.
//! * [`Level::Profile`] ([`set_enabled`]) additionally arms the scoped
//!   timers, which fire on *every recorded tensor op* — a clock pair
//!   plus a mutex push each. Profiling runs accept that overhead in
//!   exchange for exact call counts; serving tiers should not.
//!
//! Structured events stream to a JSONL file via [`install_sink`] /
//! [`emit`] whenever a sink is installed, independent of the level.
//!
//! ## Typical session
//!
//! ```
//! elda_obs::set_enabled(true);
//! {
//!     let _t = elda_obs::scope("phase", "embedding");
//!     // ... timed work ...
//! } // recorded on drop
//! elda_obs::counter_add("flops.fwd", 1024);
//! let snap = elda_obs::global().snapshot();
//! println!("{}", elda_obs::render_table(&snap, snap.total_timed()));
//! elda_obs::set_enabled(false);
//! ```
//!
//! See `docs/PROFILING.md` for the end-to-end CLI workflow
//! (`elda train --profile out.jsonl`) and the JSONL schema.

pub mod expo;
pub mod health;
pub mod hist;
pub mod registry;
pub mod report;
pub mod scope;
pub mod trace;

pub use expo::{metric_name, render_prometheus};
pub use health::{HealthConfig, HealthMonitor, HealthStatus, Incident, TensorStats};
pub use hist::{HistSnapshot, Histogram, RELATIVE_ERROR};
pub use registry::{
    global, CounterRow, GaugeRow, HistRow, Registry, Snapshot, StatAcc, StatRow, TimerRow,
    TimerStat,
};
pub use report::render_table;
pub use scope::{scope, Scope};
pub use trace::{
    close_sink, emit, flush_sink, install_sink, install_sink_to_file, parse_json_line, Field,
    TraceEvent, TraceSink,
};

use std::sync::atomic::{AtomicU8, Ordering};

/// How much instrumentation is armed, globally.
///
/// Ordered: each level arms everything below it. See the crate docs for
/// the cost model behind the `Metrics` / `Profile` split.
#[repr(u8)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Nothing armed; every instrumentation site costs one relaxed
    /// atomic load.
    Off = 0,
    /// Aggregate instruments armed: counters, gauges, stats and named
    /// histograms record; scoped timers stay off. The serving-tier
    /// setting.
    Metrics = 1,
    /// Everything armed, including the per-op scoped timers
    /// ([`scope()`]). The `--profile` setting.
    Profile = 2,
}

static LEVEL: AtomicU8 = AtomicU8::new(Level::Off as u8);

/// The current global instrumentation [`Level`].
#[inline]
pub fn level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        2 => Level::Profile,
        1 => Level::Metrics,
        _ => Level::Off,
    }
}

/// Sets the global instrumentation [`Level`].
///
/// Changing it mid-run is safe: instruments simply start (or stop)
/// accumulating from that point. Lowering it does not clear the registry
/// — call [`Registry::reset`] explicitly when reusing the process.
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Raises the global level to at least `floor`; never lowers it. Use
/// this from subsystems that need a minimum (the metrics endpoint needs
/// `Metrics`) without clobbering a stronger setting such as an
/// already-active `--profile`.
pub fn raise_level(floor: Level) {
    LEVEL.fetch_max(floor as u8, Ordering::Relaxed);
}

/// True when profiling is globally enabled ([`Level::Profile`]) — the
/// gate for scoped timers and other per-op instrumentation.
///
/// This is the *only* cost instrumented hot paths pay while profiling is
/// off: a single relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    LEVEL.load(Ordering::Relaxed) == Level::Profile as u8
}

/// True when the aggregate instruments (counters, gauges, stats, named
/// histograms) are armed — at [`Level::Metrics`] and above.
#[inline]
pub fn metrics_enabled() -> bool {
    LEVEL.load(Ordering::Relaxed) >= Level::Metrics as u8
}

/// Turns global profiling on or off: [`Level::Profile`] / [`Level::Off`].
///
/// Enabling mid-run is safe: stats simply start accumulating from that
/// point. Disabling does not clear the registry — call
/// [`Registry::reset`] explicitly when reusing the process.
pub fn set_enabled(on: bool) {
    set_level(if on { Level::Profile } else { Level::Off });
}

/// Adds `n` to the named monotonic counter (no-op below
/// [`Level::Metrics`]).
#[inline]
pub fn counter_add(name: &'static str, n: u64) {
    if metrics_enabled() {
        global().counter_add(name, n);
    }
}

/// Records one float sample into the named stat series (no-op below
/// [`Level::Metrics`] — same single-relaxed-load contract as
/// [`counter_add`]).
#[inline]
pub fn stat_add(name: &'static str, sample: f64) {
    if metrics_enabled() {
        global().stat_add(name, sample);
    }
}

/// Sets the named gauge — a last-value instrument for quantities that go
/// up *and* down, like a queue depth or a worker's utilization (no-op
/// below [`Level::Metrics`] — same single-relaxed-load contract as
/// [`counter_add`]).
#[inline]
pub fn gauge_set(name: &'static str, value: f64) {
    if metrics_enabled() {
        global().gauge_set(name, value);
    }
}

/// Records one sample into the named global histogram (no-op below
/// [`Level::Metrics`] — same single-relaxed-load contract as
/// [`counter_add`]). Resolving the name takes the registry lock; hot
/// paths that record on every request should hold the
/// `Arc<Histogram>` from [`Registry::histogram`] instead.
#[inline]
pub fn hist_record(name: &'static str, sample: f64) {
    if metrics_enabled() {
        global().histogram(name).record(sample);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enabled_flag_roundtrips() {
        // Other tests may toggle the global flag concurrently; only assert
        // on our own local registry behaviour elsewhere. Here, exercise the
        // flag itself back-to-back.
        set_enabled(true);
        assert!(enabled());
        assert!(metrics_enabled(), "Profile arms the aggregate tier too");
        set_enabled(false);
        assert!(!enabled());
        assert!(!metrics_enabled());
    }

    #[test]
    fn metrics_level_arms_aggregates_but_not_timers() {
        set_level(Level::Metrics);
        assert!(metrics_enabled());
        assert!(!enabled(), "Metrics must not arm per-op timers");
        assert_eq!(level(), Level::Metrics);
        // raise_level never lowers
        raise_level(Level::Off);
        assert_eq!(level(), Level::Metrics);
        raise_level(Level::Profile);
        assert_eq!(level(), Level::Profile);
        set_level(Level::Off);
        assert_eq!(level(), Level::Off);
    }
}
