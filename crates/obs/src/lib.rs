#![warn(missing_docs)]
//! # elda-obs
//!
//! The workspace's observability substrate: **scoped timers**, **monotonic
//! counters**, a **thread-safe global registry** and a **JSONL trace sink**,
//! built on `std` alone so every crate — down to `elda-tensor` — can depend
//! on it without pulling in external dependencies.
//!
//! ## Design contract
//!
//! Profiling is **off by default** and gated by one global flag. When it is
//! off, every instrumentation site costs exactly one relaxed atomic load
//! ([`enabled`]) and nothing else: [`scope()`] returns `None` without reading
//! the clock, and [`counter_add`] / [`TraceEvent`] emission return
//! immediately. Hot loops (the autodiff tape records one timer per op) stay
//! unmeasurably close to their uninstrumented speed.
//!
//! When profiling is on ([`set_enabled`]), timings and counters accumulate
//! in the global [`Registry`] (a mutex-guarded map — profiling runs accept
//! that overhead in exchange for exact call counts), and structured events
//! can be streamed to a JSONL file via [`install_sink`] / [`emit`].
//!
//! ## Typical session
//!
//! ```
//! elda_obs::set_enabled(true);
//! {
//!     let _t = elda_obs::scope("phase", "embedding");
//!     // ... timed work ...
//! } // recorded on drop
//! elda_obs::counter_add("flops.fwd", 1024);
//! let snap = elda_obs::global().snapshot();
//! println!("{}", elda_obs::render_table(&snap, snap.total_timed()));
//! elda_obs::set_enabled(false);
//! ```
//!
//! See `docs/PROFILING.md` for the end-to-end CLI workflow
//! (`elda train --profile out.jsonl`) and the JSONL schema.

pub mod health;
pub mod registry;
pub mod report;
pub mod scope;
pub mod trace;

pub use health::{HealthConfig, HealthMonitor, HealthStatus, Incident, TensorStats};
pub use registry::{
    global, CounterRow, GaugeRow, Registry, Snapshot, StatAcc, StatRow, TimerRow, TimerStat,
};
pub use report::render_table;
pub use scope::{scope, Scope};
pub use trace::{
    close_sink, emit, install_sink, install_sink_to_file, parse_json_line, Field, TraceEvent,
    TraceSink,
};

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// True when profiling is globally enabled.
///
/// This is the *only* cost instrumented hot paths pay while profiling is
/// off: a single relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns global profiling on or off.
///
/// Enabling mid-run is safe: stats simply start accumulating from that
/// point. Disabling does not clear the registry — call
/// [`Registry::reset`] explicitly when reusing the process.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Adds `n` to the named monotonic counter (no-op while profiling is off).
#[inline]
pub fn counter_add(name: &'static str, n: u64) {
    if enabled() {
        global().counter_add(name, n);
    }
}

/// Records one float sample into the named stat series (no-op while
/// profiling is off — same single-relaxed-load contract as
/// [`counter_add`]).
#[inline]
pub fn stat_add(name: &'static str, sample: f64) {
    if enabled() {
        global().stat_add(name, sample);
    }
}

/// Sets the named gauge — a last-value instrument for quantities that go
/// up *and* down, like a queue depth or a worker's utilization (no-op
/// while profiling is off — same single-relaxed-load contract as
/// [`counter_add`]).
#[inline]
pub fn gauge_set(name: &'static str, value: f64) {
    if enabled() {
        global().gauge_set(name, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enabled_flag_roundtrips() {
        // Other tests may toggle the global flag concurrently; only assert
        // on our own local registry behaviour elsewhere. Here, exercise the
        // flag itself back-to-back.
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
    }
}
