//! Scoped RAII timers recording into the global registry.

use crate::registry::global;
use std::time::Instant;

/// A running scoped timer; records its elapsed time (and optional work
/// units) into the global [`crate::Registry`] when dropped.
///
/// Obtain one through [`scope()`] — it returns `None` while profiling is
/// disabled, so the `let _t = ...;` pattern costs one relaxed atomic load
/// on the disabled path and never reads the clock.
///
/// Scopes nest naturally: each records its own wall interval, so a parent
/// scope's total *includes* its children's (the aggregate table documents
/// this; nested kinds should use distinct `kind` strings to keep "% of
/// wall" columns interpretable).
#[must_use = "a scope records on drop; binding it to `_` drops immediately"]
#[derive(Debug)]
pub struct Scope {
    kind: &'static str,
    name: &'static str,
    units: u64,
    start: Instant,
}

impl Scope {
    /// Attributes `units` of work (e.g. samples, flops) to this interval.
    pub fn add_units(&mut self, units: u64) {
        self.units = self.units.saturating_add(units);
    }

    /// Elapsed time since the scope opened (the value recorded on drop).
    pub fn elapsed(&self) -> std::time::Duration {
        self.start.elapsed()
    }
}

impl Drop for Scope {
    fn drop(&mut self) {
        global().record(self.kind, self.name, self.start.elapsed(), self.units);
    }
}

/// Opens a scoped timer under `(kind, name)`, or returns `None` while
/// profiling is disabled.
///
/// ```
/// let _t = elda_obs::scope("phase", "embedding");
/// // ... timed work; recorded when `_t` drops ...
/// ```
#[inline]
pub fn scope(kind: &'static str, name: &'static str) -> Option<Scope> {
    if !crate::enabled() {
        return None;
    }
    Some(Scope {
        kind,
        name,
        units: 0,
        start: Instant::now(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn scope_is_none_while_disabled() {
        crate::set_enabled(false);
        assert!(scope("test", "disabled").is_none());
    }

    #[test]
    fn scope_records_on_drop_with_units() {
        crate::set_enabled(true);
        {
            let mut t = scope("scope-test", "timed-block").expect("enabled");
            t.add_units(7);
            std::thread::sleep(Duration::from_millis(2));
            assert!(t.elapsed() >= Duration::from_millis(2));
        }
        crate::set_enabled(false);
        let stat = global()
            .timer("scope-test", "timed-block")
            .expect("recorded");
        assert!(stat.calls >= 1);
        assert!(stat.total_ns >= 2_000_000, "recorded {}ns", stat.total_ns);
        assert!(stat.units >= 7);
    }

    #[test]
    fn nested_scopes_each_record_and_parent_covers_child() {
        crate::set_enabled(true);
        {
            let _outer = scope("nest-test", "outer");
            std::thread::sleep(Duration::from_millis(1));
            {
                let _inner = scope("nest-test", "inner");
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        crate::set_enabled(false);
        let outer = global()
            .timer("nest-test", "outer")
            .expect("outer recorded");
        let inner = global()
            .timer("nest-test", "inner")
            .expect("inner recorded");
        assert!(outer.calls >= 1 && inner.calls >= 1);
        // The parent interval contains the child's.
        assert!(outer.total_ns >= inner.total_ns);
    }
}
