//! End-of-run aggregate reporting over a registry [`Snapshot`].

use crate::registry::Snapshot;
use std::fmt::Write as _;
use std::time::Duration;

/// Renders the aggregate profile table: one row per timer — kind, op,
/// calls, total ms, mean/min/max ms and share of `wall` — hottest first,
/// followed by the counters, value stats and histograms.
///
/// `wall` should be the measured wall-clock duration of the profiled
/// region (e.g. the whole `fit` call). Because scopes nest (a `"phase"`
/// scope contains the `"fwd"` op scopes recorded inside it), columns can
/// legitimately sum past 100%; the table reports each row against wall
/// time independently.
pub fn render_table(snap: &Snapshot, wall: Duration) -> String {
    let wall_ns = wall.as_nanos().max(1) as f64;
    let name_w = snap
        .timers
        .iter()
        .map(|r| r.kind.len() + 1 + r.name.len())
        .chain(std::iter::once("op".len()))
        .max()
        .unwrap_or(2);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<name_w$} {:>10} {:>12} {:>11} {:>11} {:>11} {:>7}",
        "op", "calls", "total ms", "mean ms", "min ms", "max ms", "% wall"
    );
    for row in &snap.timers {
        let total_ms = row.stat.total_ns as f64 / 1e6;
        let mean_ms = total_ms / row.stat.calls.max(1) as f64;
        let pct = row.stat.total_ns as f64 / wall_ns * 100.0;
        let _ = writeln!(
            out,
            "{:<name_w$} {:>10} {:>12.3} {:>11.4} {:>11.4} {:>11.4} {:>6.1}%",
            format!("{}.{}", row.kind, row.name),
            row.stat.calls,
            total_ms,
            mean_ms,
            row.stat.min_ns as f64 / 1e6,
            row.stat.max_ns as f64 / 1e6,
            pct
        );
    }
    if !snap.counters.is_empty() {
        let _ = writeln!(out, "--");
        for c in &snap.counters {
            let _ = writeln!(out, "{:<name_w$} {:>10}", c.name, c.value);
        }
    }
    if !snap.stats.is_empty() {
        let _ = writeln!(out, "--");
        for s in &snap.stats {
            let _ = writeln!(
                out,
                "{:<name_w$} {:>10} mean {:>9.4} min {:>9.4} max {:>9.4}",
                s.name,
                s.acc.count,
                s.acc.mean(),
                s.acc.min,
                s.acc.max
            );
        }
    }
    if snap.hists.iter().any(|h| h.hist.count > 0) {
        let _ = writeln!(out, "--");
        for h in &snap.hists {
            if h.hist.count == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "{:<name_w$} {:>10} p50 {:>9.4} p95 {:>9.4} p99 {:>9.4} max {:>9.4}",
                h.name,
                h.hist.count,
                h.hist.quantile(0.5),
                h.hist.quantile(0.95),
                h.hist.quantile(0.99),
                h.hist.max
            );
        }
    }
    let _ = write!(out, "wall: {:.1} ms", wall_ns / 1e6);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample_snapshot() -> Snapshot {
        let r = Registry::new();
        r.record("fwd", "matmul", Duration::from_millis(80), 1000);
        r.record("fwd", "matmul", Duration::from_millis(20), 500);
        r.record("bwd", "matmul", Duration::from_millis(50), 0);
        r.record("phase", "embedding", Duration::from_millis(5), 0);
        r.counter_add("flops.fwd", 1500);
        r.snapshot()
    }

    #[test]
    fn table_lists_hottest_first_with_percentages() {
        let table = render_table(&sample_snapshot(), Duration::from_millis(200));
        let lines: Vec<&str> = table.lines().collect();
        assert!(lines[0].contains("calls") && lines[0].contains("% wall"));
        assert!(lines[1].starts_with("fwd.matmul"), "{}", lines[1]);
        assert!(lines[1].contains("50.0%"), "{}", lines[1]);
        assert!(lines[2].starts_with("bwd.matmul"));
        assert!(lines[2].contains("25.0%"));
        // counters section + wall footer
        assert!(table.contains("flops.fwd"));
        assert!(table.ends_with("wall: 200.0 ms"));
    }

    #[test]
    fn mean_column_divides_by_calls() {
        let table = render_table(&sample_snapshot(), Duration::from_millis(200));
        let row = table.lines().find(|l| l.starts_with("fwd.matmul")).unwrap();
        // 100 ms over 2 calls → mean 50 ms
        assert!(row.contains("50.0000"), "{row}");
    }

    #[test]
    fn empty_snapshot_renders_header_and_wall_only() {
        let table = render_table(&Snapshot::default(), Duration::from_millis(3));
        assert_eq!(table.lines().count(), 2);
        assert!(table.ends_with("wall: 3.0 ms"));
    }

    #[test]
    fn timer_rows_show_min_and_max() {
        let table = render_table(&sample_snapshot(), Duration::from_millis(200));
        let row = table.lines().find(|l| l.starts_with("fwd.matmul")).unwrap();
        // calls of 80 ms and 20 ms: min 20, max 80
        assert!(row.contains("20.0000") && row.contains("80.0000"), "{row}");
        assert!(table.lines().next().unwrap().contains("min ms"), "{table}");
    }

    #[test]
    fn histogram_section_prints_percentiles_and_exact_max() {
        let r = Registry::new();
        let h = r.histogram("serve.latency_ms");
        for v in [1.0, 2.0, 4.0] {
            h.record(v);
        }
        let table = render_table(&r.snapshot(), Duration::from_millis(1));
        let row = table
            .lines()
            .find(|l| l.starts_with("serve.latency_ms"))
            .expect("hist row present");
        assert!(row.contains("p50") && row.contains("p99"), "{row}");
        assert!(row.contains("4.0000"), "exact max: {row}");
    }

    #[test]
    fn stats_section_prints_mean_and_range() {
        let r = Registry::new();
        r.stat_add("attention.feature.entropy", 2.0);
        r.stat_add("attention.feature.entropy", 4.0);
        let table = render_table(&r.snapshot(), Duration::from_millis(1));
        let row = table
            .lines()
            .find(|l| l.starts_with("attention.feature.entropy"))
            .expect("stats row present");
        assert!(row.contains("mean") && row.contains("3.0000"), "{row}");
        assert!(row.contains("2.0000") && row.contains("4.0000"), "{row}");
    }
}
