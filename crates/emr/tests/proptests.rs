//! Property tests on the EMR substrate: generator invariants that must
//! hold for arbitrary configurations, and pipeline invariants for
//! arbitrary patients.

use elda_emr::io::{parse_record, write_record};
use elda_emr::{Cohort, CohortConfig, Pipeline, NUM_FEATURES};
use proptest::prelude::*;

fn any_config() -> impl Strategy<Value = CohortConfig> {
    (
        10usize..40,  // patients
        6usize..20,   // t_len
        0u64..1000,   // seed
        0.05f32..0.3, // mortality target
        0.3f32..0.7,  // los target
    )
        .prop_map(|(n, t, seed, mort, los)| {
            let mut c = CohortConfig::small(n, seed);
            c.t_len = t;
            c.target_mortality = mort;
            c.target_los_gt7 = los;
            c
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cohorts_respect_structural_invariants(config in any_config()) {
        let t_len = config.t_len;
        let n = config.n_patients;
        let cohort = Cohort::generate(config);
        prop_assert_eq!(cohort.len(), n);
        for p in &cohort.patients {
            prop_assert_eq!(p.values.len(), t_len * NUM_FEATURES);
            prop_assert_eq!(p.severity.len(), t_len);
            prop_assert!(p.severity.iter().all(|&s| (0.0..=1.2).contains(&s)));
            prop_assert!(p.los_days > 0.0);
            // labels consistent with each other
            prop_assert_eq!(p.los_gt7, p.los_days > 7.0 || (p.los_days - 7.0).abs() < 1e-4 && p.los_gt7);
        }
    }

    #[test]
    fn pipeline_output_is_always_finite_and_clipped(config in any_config()) {
        let t_len = config.t_len;
        let cohort = Cohort::generate(config);
        let idx: Vec<usize> = (0..cohort.len()).collect();
        let pipe = Pipeline::fit(&cohort, &idx);
        for p in &cohort.patients {
            let s = pipe.process(p);
            prop_assert!(s.x.iter().all(|v| v.is_finite()));
            prop_assert!(s.x.iter().all(|&v| (-3.0..=3.0).contains(&v)));
            prop_assert!(s.mask.iter().all(|&m| m == 0.0 || m == 1.0));
            prop_assert!(s.delta.iter().all(|&d| (0.0..=1.0).contains(&d)));
            // never flag ⟺ no observation of that feature
            for f in 0..NUM_FEATURES {
                let observed_any = (0..t_len).any(|t| s.mask[t * NUM_FEATURES + f] == 1.0);
                prop_assert_eq!(s.never[f] == 0.0, observed_any, "feature {}", f);
            }
        }
    }

    #[test]
    fn mask_count_equals_record_count(config in any_config()) {
        let cohort = Cohort::generate(config);
        let idx: Vec<usize> = (0..cohort.len()).collect();
        let pipe = Pipeline::fit(&cohort, &idx);
        for p in cohort.patients.iter().take(5) {
            let s = pipe.process(p);
            let mask_count = s.mask.iter().filter(|&&m| m == 1.0).count();
            prop_assert_eq!(mask_count, p.num_records());
        }
    }

    #[test]
    fn physionet_io_roundtrip_is_lossless_on_structure(config in any_config()) {
        let t_len = config.t_len;
        let cohort = Cohort::generate(config);
        let p = &cohort.patients[0];
        let text = write_record(p, t_len);
        let grid = parse_record("prop", &text, t_len).unwrap();
        let observed_before = p.num_records();
        let observed_after = grid.iter().filter(|v| !v.is_nan()).count();
        prop_assert_eq!(observed_before, observed_after);
    }

    #[test]
    fn standardize_is_monotone_per_feature(
        f in 0usize..NUM_FEATURES,
        lo in -100.0f32..100.0,
        delta in 0.01f32..50.0,
    ) {
        let cohort = Cohort::generate(CohortConfig::small(20, 1));
        let idx: Vec<usize> = (0..20).collect();
        let pipe = Pipeline::fit(&cohort, &idx);
        let a = pipe.standardize(f, lo);
        let b = pipe.standardize(f, lo + delta);
        prop_assert!(b >= a, "standardization must be monotone (clipping may flatten)");
    }
}
