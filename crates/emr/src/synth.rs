//! The cohort generator: archetypes + latent severity → raw EMR grids with
//! informative missingness and calibrated outcome labels.

use crate::archetype::{Archetype, ARCHETYPES};
use crate::features::{FeatureKind, FEATURES, NUM_FEATURES};
use crate::severity::{outcome_score, severity_curve, summarize, SeverityParams};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Configuration of one synthetic cohort.
#[derive(Debug, Clone)]
pub struct CohortConfig {
    /// Display name (e.g. `"physionet2012-like"`).
    pub name: String,
    /// Number of admissions to simulate.
    pub n_patients: usize,
    /// Hours per stay (the paper uses the first 48h of each admission).
    pub t_len: usize,
    /// Master seed; everything downstream is deterministic in it.
    pub seed: u64,
    /// Mixing weights over [`ARCHETYPES`] (need not be normalized).
    pub archetype_weights: [f32; 8],
    /// Marginal in-hospital mortality rate to calibrate labels to.
    pub target_mortality: f32,
    /// Marginal P(length-of-stay > 7 days) to calibrate labels to.
    pub target_los_gt7: f32,
}

impl CohortConfig {
    /// A small cohort for tests and examples.
    pub fn small(n_patients: usize, seed: u64) -> Self {
        CohortConfig {
            name: format!("small-{n_patients}"),
            n_patients,
            t_len: 48,
            seed,
            archetype_weights: [0.42, 0.08, 0.08, 0.08, 0.12, 0.08, 0.07, 0.07],
            target_mortality: 0.142,
            target_los_gt7: 0.55,
        }
    }
}

/// One simulated admission.
#[derive(Debug, Clone)]
pub struct Patient {
    /// Index within the cohort.
    pub id: usize,
    /// The generating archetype (ground truth; not visible to models).
    pub archetype: Archetype,
    /// Raw feature grid, row-major `(t_len, NUM_FEATURES)`, `NaN` = missing.
    pub values: Vec<f32>,
    /// The latent severity curve (ground truth; used by tests and the
    /// interpretability case studies, never by models).
    pub severity: Vec<f32>,
    /// In-hospital mortality label.
    pub mortality: bool,
    /// Length-of-stay > 7 days label.
    pub los_gt7: bool,
    /// Simulated length of stay in days.
    pub los_days: f32,
}

impl Patient {
    /// Raw (possibly missing) value at `(hour, feature)`.
    pub fn value(&self, t: usize, f: usize) -> f32 {
        self.values[t * NUM_FEATURES + f]
    }

    /// True when `(hour, feature)` was observed.
    pub fn observed(&self, t: usize, f: usize) -> bool {
        !self.value(t, f).is_nan()
    }

    /// Number of observed records in the stay.
    pub fn num_records(&self) -> usize {
        self.values.iter().filter(|v| !v.is_nan()).count()
    }

    /// True when the feature was never observed during this stay
    /// (the paper's type-(iii) missingness, embedded via `V^m`).
    pub fn never_observed(&self, f: usize) -> bool {
        let t_len = self.values.len() / NUM_FEATURES;
        (0..t_len).all(|t| !self.observed(t, f))
    }
}

/// A generated cohort.
#[derive(Debug, Clone)]
pub struct Cohort {
    /// The generating configuration.
    pub config: CohortConfig,
    /// All simulated admissions.
    pub patients: Vec<Patient>,
}

impl Cohort {
    /// Simulates a cohort. Labels are calibrated so the marginal mortality
    /// and LOS rates match the configured targets (the calibration mirrors
    /// Table I's class ratios).
    ///
    /// ```
    /// use elda_emr::{Cohort, CohortConfig};
    /// let cohort = Cohort::generate(CohortConfig::small(50, 7));
    /// assert_eq!(cohort.len(), 50);
    /// assert_eq!(cohort.t_len(), 48);
    /// ```
    pub fn generate(config: CohortConfig) -> Cohort {
        assert!(
            config.n_patients >= 10,
            "cohort too small to calibrate labels"
        );
        assert!(config.t_len >= 4, "stay too short");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut drafts: Vec<PatientDraft> = (0..config.n_patients)
            .map(|id| PatientDraft::simulate(id, &config, &mut rng))
            .collect();

        // Calibrate label thresholds by empirical quantiles so the marginal
        // rates match the targets regardless of archetype mix.
        let mort_thr = quantile(
            drafts.iter().map(|d| d.mortality_score).collect(),
            1.0 - config.target_mortality,
        );
        let los_thr = quantile(
            drafts.iter().map(|d| d.los_score).collect(),
            1.0 - config.target_los_gt7,
        );

        let patients = drafts
            .drain(..)
            .map(|d| d.finalize(mort_thr, los_thr))
            .collect();
        Cohort { config, patients }
    }

    /// Hours per stay.
    pub fn t_len(&self) -> usize {
        self.config.t_len
    }

    /// Number of admissions.
    pub fn len(&self) -> usize {
        self.patients.len()
    }

    /// True for an empty cohort (never produced by [`Cohort::generate`]).
    pub fn is_empty(&self) -> bool {
        self.patients.is_empty()
    }
}

/// A patient before label thresholding.
struct PatientDraft {
    id: usize,
    archetype: Archetype,
    values: Vec<f32>,
    severity: Vec<f32>,
    mortality_score: f32,
    los_score: f32,
}

impl PatientDraft {
    fn simulate(id: usize, config: &CohortConfig, rng: &mut StdRng) -> PatientDraft {
        let archetype = sample_archetype(&config.archetype_weights, rng);
        let params = sample_severity_params(archetype, config.t_len, rng);
        let severity = severity_curve(&params, config.t_len, rng);
        let values = render_features(archetype, &severity, config.t_len, rng);
        let summary = summarize(&severity);
        // Label noise sets the Bayes-error floor: without it every model
        // saturates near AUC 1.0 on synthetic data and the ordering the
        // paper reports dissolves into ceiling effects.
        let mortality_score = outcome_score(&summary, archetype.lethality()) + 0.40 * gauss(rng);
        let los_score = summary.mean + 0.3 * summary.peak + 0.25 * gauss(rng);
        PatientDraft {
            id,
            archetype,
            values,
            severity,
            mortality_score,
            los_score,
        }
    }

    fn finalize(self, mort_thr: f32, los_thr: f32) -> Patient {
        let mortality = self.mortality_score > mort_thr;
        let los_gt7 = self.los_score > los_thr;
        let los_days = (7.0 + 14.0 * (self.los_score - los_thr)).clamp(0.5, 60.0);
        Patient {
            id: self.id,
            archetype: self.archetype,
            values: self.values,
            severity: self.severity,
            mortality,
            los_gt7,
            los_days,
        }
    }
}

fn sample_archetype(weights: &[f32; 8], rng: &mut StdRng) -> Archetype {
    let total: f32 = weights.iter().sum();
    assert!(total > 0.0, "archetype weights must not all be zero");
    let mut draw = rng.gen::<f32>() * total;
    for (a, &w) in ARCHETYPES.iter().zip(weights) {
        if draw < w {
            return *a;
        }
        draw -= w;
    }
    *ARCHETYPES.last().unwrap()
}

fn sample_severity_params(archetype: Archetype, t_len: usize, rng: &mut StdRng) -> SeverityParams {
    if archetype == Archetype::Stable {
        return SeverityParams::quiet();
    }
    let onset = rng.gen_range(2..(t_len / 2).max(3));
    // Sicker archetypes are treated successfully less often.
    let treat_prob = 1.0 - 0.25 * archetype.lethality();
    let treated = rng.gen::<f32>() < treat_prob;
    SeverityParams {
        onset,
        rise_rate: rng.gen_range(0.06..0.16),
        treatment_at: treated.then(|| (onset + rng.gen_range(8..22)).min(t_len - 1)),
        recovery_rate: rng.gen_range(0.05..0.13),
        volatility: 0.02,
        peak_cap: rng.gen_range(0.65..1.1),
    }
}

/// Global observation-rate multiplier, tuned so the default cohorts land
/// on Table I's ~360 records/patient and ~80% missing rate.
const RATE_CALIBRATION: f32 = 0.88;

/// Renders the feature grid from the severity curve: per-feature personal
/// baseline + archetype effect × severity + AR(1) noise, then informative
/// subsampling.
fn render_features(
    archetype: Archetype,
    severity: &[f32],
    t_len: usize,
    rng: &mut StdRng,
) -> Vec<f32> {
    let effects = archetype.effects();
    let mut grid = vec![f32::NAN; t_len * NUM_FEATURES];
    for (f, def) in FEATURES.iter().enumerate() {
        // Some clinically irrelevant features are simply never ordered for
        // this patient: the paper's type-(iii) missingness. Irrelevant labs
        // are dropped more often than vitals.
        let irrelevant = effects[f] == 0.0;
        let drop_prob = match def.kind {
            FeatureKind::Vital => 0.01,
            FeatureKind::Lab => {
                if irrelevant {
                    0.22
                } else {
                    0.02
                }
            }
            FeatureKind::Occasional => {
                if irrelevant {
                    0.55
                } else {
                    0.25
                }
            }
        };
        if rng.gen::<f32>() < drop_prob {
            continue; // never observed
        }

        let personal = 0.35 * gauss(rng); // stable per-patient offset (in stds)
        let mut ar = 0.0f32; // AR(1) measurement/physiology noise
        for (t, &s) in severity.iter().enumerate() {
            ar = 0.7 * ar + 0.15 * gauss(rng);
            let z = personal + effects[f] * s + ar;
            let natural = (def.mean + def.std * z).clamp(def.min, def.max);

            // Informative sampling: higher severity and a locally abnormal
            // value both raise the chance this hour gets a record; the
            // first two hours get an admission-workup boost.
            let abnormality = if effects[f] != 0.0 {
                (effects[f] * s).abs()
            } else {
                0.0
            };
            let admission_boost = if t < 2 { 2.0 } else { 1.0 };
            let p = (RATE_CALIBRATION
                * def.base_rate
                * admission_boost
                * (1.0 + 0.9 * s + 0.3 * abnormality))
                .min(0.95);
            if rng.gen::<f32>() < p {
                grid[t * NUM_FEATURES + f] = natural;
            }
        }
    }
    grid
}

/// Empirical quantile by sorting (q in `[0,1]`; 1.0 → max).
fn quantile(mut values: Vec<f32>, q: f32) -> f32 {
    assert!(!values.is_empty());
    values.sort_by(|a, b| a.partial_cmp(b).expect("NaN score"));
    let idx = ((values.len() as f32 - 1.0) * q.clamp(0.0, 1.0)).round() as usize;
    values[idx]
}

fn gauss(rng: &mut StdRng) -> f32 {
    let u1: f32 = 1.0 - rng.gen::<f32>();
    let u2: f32 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::feature_by_name;

    fn cohort() -> Cohort {
        Cohort::generate(CohortConfig::small(400, 7))
    }

    #[test]
    fn generation_is_deterministic_in_seed() {
        // NaN markers make Vec<f32> equality useless; compare bit patterns.
        let bits = |p: &Patient| p.values.iter().map(|v| v.to_bits()).collect::<Vec<u32>>();
        let a = Cohort::generate(CohortConfig::small(50, 3));
        let b = Cohort::generate(CohortConfig::small(50, 3));
        assert_eq!(bits(&a.patients[17]), bits(&b.patients[17]));
        assert_eq!(a.patients[17].mortality, b.patients[17].mortality);
        let c = Cohort::generate(CohortConfig::small(50, 4));
        assert_ne!(bits(&a.patients[17]), bits(&c.patients[17]));
    }

    #[test]
    fn mortality_rate_matches_target() {
        let c = cohort();
        let rate = c.patients.iter().filter(|p| p.mortality).count() as f32 / c.len() as f32;
        assert!((rate - 0.142).abs() < 0.02, "mortality rate {rate}");
    }

    #[test]
    fn los_rate_matches_target() {
        let c = cohort();
        let rate = c.patients.iter().filter(|p| p.los_gt7).count() as f32 / c.len() as f32;
        assert!((rate - 0.55).abs() < 0.03, "LOS rate {rate}");
    }

    #[test]
    fn missing_rate_near_80_percent() {
        let c = cohort();
        let total_slots = c.len() * c.t_len() * NUM_FEATURES;
        let observed: usize = c.patients.iter().map(Patient::num_records).sum();
        let missing = 1.0 - observed as f32 / total_slots as f32;
        assert!((0.74..=0.86).contains(&missing), "missing rate {missing}");
    }

    #[test]
    fn records_per_patient_near_table1() {
        let c = cohort();
        let avg =
            c.patients.iter().map(Patient::num_records).sum::<usize>() as f32 / c.len() as f32;
        // Table I: 359.19 (PhysioNet2012), 346.05 (MIMIC-III)
        assert!((250.0..=470.0).contains(&avg), "avg records {avg}");
    }

    #[test]
    fn values_respect_physiological_bounds() {
        let c = Cohort::generate(CohortConfig::small(50, 9));
        for p in &c.patients {
            for t in 0..c.t_len() {
                for (f, def) in FEATURES.iter().enumerate() {
                    let v = p.value(t, f);
                    if !v.is_nan() {
                        assert!(
                            (def.min..=def.max).contains(&v),
                            "{} = {v} outside [{}, {}]",
                            def.name,
                            def.min,
                            def.max
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn dla_patients_show_the_paper_pattern() {
        // Among DLA patients, observed glucose and lactate should run high
        // and pH low relative to population means, during the acute phase.
        let c = Cohort::generate(CohortConfig {
            archetype_weights: [0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0],
            ..CohortConfig::small(60, 11)
        });
        let glu = feature_by_name("Glucose").unwrap();
        let lac = feature_by_name("Lactate").unwrap();
        let ph = feature_by_name("pH").unwrap();
        let (mut g_sum, mut g_n) = (0.0, 0);
        let (mut l_sum, mut l_n) = (0.0, 0);
        let (mut p_sum, mut p_n) = (0.0, 0);
        for p in &c.patients {
            for t in 0..c.t_len() {
                if p.severity[t] > 0.5 {
                    for (fid, sum, n) in [
                        (glu, &mut g_sum, &mut g_n),
                        (lac, &mut l_sum, &mut l_n),
                        (ph, &mut p_sum, &mut p_n),
                    ] {
                        let v = p.value(t, fid);
                        if !v.is_nan() {
                            *sum += v;
                            *n += 1;
                        }
                    }
                }
            }
        }
        assert!(
            g_n > 10 && l_n > 10 && p_n > 10,
            "not enough acute observations"
        );
        let (g_avg, l_avg, p_avg) = (g_sum / g_n as f32, l_sum / l_n as f32, p_sum / p_n as f32);
        assert!(g_avg > 180.0, "glucose {g_avg}");
        assert!(l_avg > 3.0, "lactate {l_avg}");
        assert!(p_avg < 7.32, "pH {p_avg}");
    }

    #[test]
    fn sicker_patients_are_sampled_more_densely() {
        let c = cohort();
        let mut dense_sick = Vec::new();
        let mut dense_well = Vec::new();
        for p in &c.patients {
            let mean_sev = p.severity.iter().sum::<f32>() / p.severity.len() as f32;
            let density = p.num_records() as f32;
            if mean_sev > 0.4 {
                dense_sick.push(density);
            } else if mean_sev < 0.15 {
                dense_well.push(density);
            }
        }
        assert!(dense_sick.len() > 5 && dense_well.len() > 5);
        let sick = dense_sick.iter().sum::<f32>() / dense_sick.len() as f32;
        let well = dense_well.iter().sum::<f32>() / dense_well.len() as f32;
        assert!(sick > well * 1.15, "sick {sick} vs well {well}");
    }

    #[test]
    fn labels_correlate_with_severity() {
        let c = cohort();
        let mean_sev = |p: &Patient| p.severity.iter().sum::<f32>() / p.severity.len() as f32;
        let died: Vec<f32> = c
            .patients
            .iter()
            .filter(|p| p.mortality)
            .map(mean_sev)
            .collect();
        let lived: Vec<f32> = c
            .patients
            .iter()
            .filter(|p| !p.mortality)
            .map(mean_sev)
            .collect();
        let d = died.iter().sum::<f32>() / died.len() as f32;
        let l = lived.iter().sum::<f32>() / lived.len() as f32;
        assert!(d > l + 0.05, "died {d} vs lived {l}");
    }

    #[test]
    fn never_observed_features_exist_and_vary() {
        let c = cohort();
        let any_never = c
            .patients
            .iter()
            .any(|p| (0..NUM_FEATURES).any(|f| p.never_observed(f)));
        assert!(any_never, "type-(iii) missingness should occur");
        // Cholesterol (occasional, usually irrelevant) should be never-observed
        // for a sizable share of patients.
        let chol = feature_by_name("Cholesterol").unwrap();
        let frac =
            c.patients.iter().filter(|p| p.never_observed(chol)).count() as f32 / c.len() as f32;
        assert!(frac > 0.3, "cholesterol never-observed fraction {frac}");
    }
}
