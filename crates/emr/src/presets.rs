//! Preset cohorts sized to the paper's Table I, and the deterministic
//! "Patient A" DLA case study of §V-D.

use crate::archetype::Archetype;
use crate::features::{essential_features, FEATURES, NUM_FEATURES};
use crate::severity::{severity_curve, SeverityParams};
use crate::synth::{Cohort, CohortConfig, Patient};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// A named preset with an optional reduced size for quick runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CohortPreset {
    /// 12,000 admissions; mortality 1707/12000; LOS>7 ≈ 65% (Table I).
    PhysioNet2012,
    /// 21,139 admissions; mortality 2797/21139; LOS>7 ≈ 57% (Table I).
    MimicIii,
}

impl CohortPreset {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            CohortPreset::PhysioNet2012 => "PhysioNet2012",
            CohortPreset::MimicIii => "MIMIC-III",
        }
    }

    /// The preset's configuration, optionally scaled down to `n_override`
    /// admissions (class ratios preserved) for quick runs.
    pub fn config(self, seed: u64, n_override: Option<usize>) -> CohortConfig {
        match self {
            CohortPreset::PhysioNet2012 => CohortConfig {
                name: "physionet2012-like".into(),
                n_patients: n_override.unwrap_or(12_000),
                t_len: 48,
                seed,
                // A general ICU mix leaning medical.
                archetype_weights: [0.40, 0.07, 0.07, 0.07, 0.14, 0.09, 0.08, 0.08],
                target_mortality: 1707.0 / 12_000.0,
                target_los_gt7: 7738.0 / (4095.0 + 7738.0),
            },
            CohortPreset::MimicIii => CohortConfig {
                name: "mimic3-like".into(),
                n_patients: n_override.unwrap_or(21_139),
                t_len: 48,
                seed,
                // A slightly more surgical/cardiac mix, giving the second
                // dataset a different archetype distribution as real
                // hospitals differ.
                archetype_weights: [0.44, 0.06, 0.05, 0.05, 0.12, 0.12, 0.08, 0.08],
                target_mortality: 2797.0 / 21_139.0,
                target_los_gt7: 12_005.0 / 21_139.0,
            },
        }
    }
}

/// Generates the PhysioNet2012-like cohort (full size unless overridden).
pub fn physionet2012_like(seed: u64, n_override: Option<usize>) -> Cohort {
    Cohort::generate(CohortPreset::PhysioNet2012.config(seed, n_override))
}

/// Generates the MIMIC-III-like cohort (full size unless overridden).
pub fn mimic3_like(seed: u64, n_override: Option<usize>) -> Cohort {
    Cohort::generate(CohortPreset::MimicIii.config(seed, n_override))
}

/// The deterministic "Patient A" of the paper's interpretability study
/// (§V-D): a DM patient developing diabetic lactic acidosis whose glucose
/// starts rising around hour 12 and stabilizes around hour 35 after ICU
/// treatment. Essential features are observed almost every hour so the
/// Table II / Figure 9 / Figure 10 reproductions have dense values.
pub fn patient_a(seed: u64) -> Patient {
    let t_len = 48;
    let mut rng = StdRng::seed_from_u64(seed);
    let params = SeverityParams {
        onset: 11,
        rise_rate: 0.14,
        treatment_at: Some(27),
        recovery_rate: 0.12,
        volatility: 0.012,
        peak_cap: 1.0,
    };
    let severity = severity_curve(&params, t_len, &mut rng);
    let effects = Archetype::DmLacticAcidosis.effects();
    let essential = essential_features();
    let mut values = vec![f32::NAN; t_len * NUM_FEATURES];
    for (f, def) in FEATURES.iter().enumerate() {
        let is_essential = essential.contains(&f);
        let mut ar = 0.0f32;
        for (t, &s) in severity.iter().enumerate() {
            let u1: f32 = 1.0 - rng.gen::<f32>();
            let u2: f32 = rng.gen();
            let g = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
            ar = 0.7 * ar + 0.10 * g;
            let z = effects[f] * s + ar;
            let natural = (def.mean + def.std * z).clamp(def.min, def.max);
            let p = if is_essential {
                0.9
            } else {
                def.base_rate * (1.0 + 1.8 * s)
            };
            if rng.gen::<f32>() < p.min(0.95) {
                values[t * NUM_FEATURES + f] = natural;
            }
        }
    }
    Patient {
        id: usize::MAX, // sentinel: not part of any cohort
        archetype: Archetype::DmLacticAcidosis,
        values,
        severity,
        mortality: false, // Patient A survives after treatment in the paper
        los_gt7: true,
        los_days: 9.0,
    }
}

/// A copy of a patient with every observed value of feature `fid`
/// overwritten by `value` — the paper's Figure 9(b) controlled experiment
/// (Lactate forced to the population mean).
pub fn with_feature_overridden(patient: &Patient, fid: usize, value: f32) -> Patient {
    let mut out = patient.clone();
    let t_len = out.values.len() / NUM_FEATURES;
    for t in 0..t_len {
        let idx = t * NUM_FEATURES + fid;
        if !out.values[idx].is_nan() {
            out.values[idx] = value;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::feature_by_name;
    use crate::stats::cohort_stats;

    #[test]
    fn scaled_presets_keep_class_ratios() {
        let c = physionet2012_like(1, Some(600));
        let s = cohort_stats(&c);
        assert_eq!(s.admissions, 600);
        let mort = s.non_survivors as f32 / 600.0;
        assert!((mort - 0.1422).abs() < 0.03, "mortality {mort}");
        let los = s.los_gt7 as f32 / 600.0;
        assert!((los - 0.654).abs() < 0.04, "los {los}");
    }

    #[test]
    fn mimic_preset_has_its_own_ratios() {
        let c = mimic3_like(2, Some(600));
        let s = cohort_stats(&c);
        let mort = s.non_survivors as f32 / 600.0;
        assert!((mort - 0.1323).abs() < 0.03, "mortality {mort}");
        let los = s.los_gt7 as f32 / 600.0;
        assert!((los - 0.568).abs() < 0.04, "los {los}");
    }

    #[test]
    fn patient_a_glucose_rises_then_recovers() {
        let p = patient_a(99);
        let glu = feature_by_name("Glucose").unwrap();
        let avg = |lo: usize, hi: usize| {
            let vals: Vec<f32> = (lo..hi)
                .filter_map(|t| {
                    let v = p.value(t, glu);
                    (!v.is_nan()).then_some(v)
                })
                .collect();
            vals.iter().sum::<f32>() / vals.len().max(1) as f32
        };
        let early = avg(0, 9);
        let acute = avg(16, 27);
        let late = avg(40, 48);
        assert!(acute > early + 80.0, "acute {acute} vs early {early}");
        assert!(late < acute - 60.0, "late {late} vs acute {acute}");
    }

    #[test]
    fn patient_a_has_dense_essential_observations() {
        let p = patient_a(99);
        for f in essential_features() {
            let obs = (0..48).filter(|&t| p.observed(t, f)).count();
            assert!(
                obs >= 30,
                "feature {} observed only {obs} times",
                FEATURES[f].name
            );
        }
    }

    #[test]
    fn override_replaces_only_observed_values() {
        let p = patient_a(99);
        let lac = feature_by_name("Lactate").unwrap();
        let fixed = with_feature_overridden(&p, lac, 1.4);
        for t in 0..48 {
            if p.observed(t, lac) {
                assert_eq!(fixed.value(t, lac), 1.4);
            } else {
                assert!(fixed.value(t, lac).is_nan());
            }
            // other features untouched
            let hr = feature_by_name("HR").unwrap();
            assert!(
                p.value(t, hr) == fixed.value(t, hr)
                    || (p.value(t, hr).is_nan() && fixed.value(t, hr).is_nan())
            );
        }
    }
}
