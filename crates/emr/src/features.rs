//! The 37 PhysioNet Challenge 2012 medical features and their
//! physiological parameters.
//!
//! Normal ranges and plausible bounds follow standard adult reference
//! intervals; per-hour base sampling rates reflect ICU practice (vitals are
//! charted near-hourly, labs a few times a day) and are jointly tuned so
//! the overall missing rate lands near the paper's ~80% (Table I).

/// Index of a medical feature in the canonical 37-feature catalog.
pub type FeatureId = usize;

/// Number of medical features, matching both datasets in the paper.
pub const NUM_FEATURES: usize = 37;

/// How a feature is measured, which drives its sampling cadence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeatureKind {
    /// Continuously monitored vitals (HR, MAP, ...): sampled most hours.
    Vital,
    /// Laboratory panels (pH, Lactate, ...): sampled a few times per day.
    Lab,
    /// Occasional observations (Weight, Cholesterol, ...): rarely sampled.
    Occasional,
}

/// Static description of one medical feature.
#[derive(Debug, Clone, Copy)]
pub struct FeatureDef {
    /// Short name as used in the PhysioNet 2012 set and the paper's plots.
    pub name: &'static str,
    /// Measurement kind (drives sampling cadence).
    pub kind: FeatureKind,
    /// Population mean in natural units (the healthy baseline).
    pub mean: f32,
    /// Population standard deviation in natural units.
    pub std: f32,
    /// Physiologically plausible lower bound (values are clipped here).
    pub min: f32,
    /// Physiologically plausible upper bound.
    pub max: f32,
    /// Per-hour probability of being observed at baseline severity.
    pub base_rate: f32,
}

/// The canonical 37-feature catalog (PhysioNet Challenge 2012 set A
/// variables, as selected by the paper for both datasets).
pub const FEATURES: [FeatureDef; NUM_FEATURES] = [
    FeatureDef {
        name: "Albumin",
        kind: FeatureKind::Lab,
        mean: 3.5,
        std: 0.6,
        min: 1.0,
        max: 5.5,
        base_rate: 0.04,
    },
    FeatureDef {
        name: "ALP",
        kind: FeatureKind::Lab,
        mean: 90.0,
        std: 40.0,
        min: 10.0,
        max: 600.0,
        base_rate: 0.04,
    },
    FeatureDef {
        name: "ALT",
        kind: FeatureKind::Lab,
        mean: 35.0,
        std: 25.0,
        min: 3.0,
        max: 1000.0,
        base_rate: 0.04,
    },
    FeatureDef {
        name: "AST",
        kind: FeatureKind::Lab,
        mean: 35.0,
        std: 25.0,
        min: 3.0,
        max: 1000.0,
        base_rate: 0.04,
    },
    FeatureDef {
        name: "Bilirubin",
        kind: FeatureKind::Lab,
        mean: 0.9,
        std: 0.5,
        min: 0.1,
        max: 25.0,
        base_rate: 0.04,
    },
    FeatureDef {
        name: "BUN",
        kind: FeatureKind::Lab,
        mean: 18.0,
        std: 8.0,
        min: 2.0,
        max: 150.0,
        base_rate: 0.08,
    },
    FeatureDef {
        name: "Cholesterol",
        kind: FeatureKind::Occasional,
        mean: 180.0,
        std: 40.0,
        min: 50.0,
        max: 400.0,
        base_rate: 0.01,
    },
    FeatureDef {
        name: "Creatinine",
        kind: FeatureKind::Lab,
        mean: 1.0,
        std: 0.4,
        min: 0.2,
        max: 15.0,
        base_rate: 0.08,
    },
    FeatureDef {
        name: "DiasABP",
        kind: FeatureKind::Vital,
        mean: 65.0,
        std: 10.0,
        min: 20.0,
        max: 150.0,
        base_rate: 0.55,
    },
    FeatureDef {
        name: "FiO2",
        kind: FeatureKind::Vital,
        mean: 0.30,
        std: 0.10,
        min: 0.21,
        max: 1.0,
        base_rate: 0.25,
    },
    FeatureDef {
        name: "GCS",
        kind: FeatureKind::Vital,
        mean: 13.5,
        std: 2.0,
        min: 3.0,
        max: 15.0,
        base_rate: 0.30,
    },
    FeatureDef {
        name: "Glucose",
        kind: FeatureKind::Lab,
        mean: 120.0,
        std: 30.0,
        min: 30.0,
        max: 900.0,
        base_rate: 0.10,
    },
    FeatureDef {
        name: "HCO3",
        kind: FeatureKind::Lab,
        mean: 24.0,
        std: 3.0,
        min: 5.0,
        max: 45.0,
        base_rate: 0.08,
    },
    FeatureDef {
        name: "HCT",
        kind: FeatureKind::Lab,
        mean: 34.0,
        std: 5.0,
        min: 12.0,
        max: 60.0,
        base_rate: 0.08,
    },
    FeatureDef {
        name: "HR",
        kind: FeatureKind::Vital,
        mean: 85.0,
        std: 13.0,
        min: 20.0,
        max: 220.0,
        base_rate: 0.60,
    },
    FeatureDef {
        name: "K",
        kind: FeatureKind::Lab,
        mean: 4.1,
        std: 0.5,
        min: 1.5,
        max: 9.0,
        base_rate: 0.08,
    },
    FeatureDef {
        name: "Lactate",
        kind: FeatureKind::Lab,
        mean: 1.4,
        std: 0.8,
        min: 0.2,
        max: 25.0,
        base_rate: 0.06,
    },
    FeatureDef {
        name: "Mg",
        kind: FeatureKind::Lab,
        mean: 2.0,
        std: 0.3,
        min: 0.5,
        max: 5.0,
        base_rate: 0.05,
    },
    FeatureDef {
        name: "MAP",
        kind: FeatureKind::Vital,
        mean: 82.0,
        std: 12.0,
        min: 25.0,
        max: 180.0,
        base_rate: 0.55,
    },
    FeatureDef {
        name: "MechVent",
        kind: FeatureKind::Vital,
        mean: 0.25,
        std: 0.43,
        min: 0.0,
        max: 1.0,
        base_rate: 0.20,
    },
    FeatureDef {
        name: "Na",
        kind: FeatureKind::Lab,
        mean: 139.0,
        std: 4.0,
        min: 110.0,
        max: 175.0,
        base_rate: 0.08,
    },
    FeatureDef {
        name: "NIDiasABP",
        kind: FeatureKind::Vital,
        mean: 64.0,
        std: 11.0,
        min: 20.0,
        max: 150.0,
        base_rate: 0.35,
    },
    FeatureDef {
        name: "NIMAP",
        kind: FeatureKind::Vital,
        mean: 80.0,
        std: 12.0,
        min: 25.0,
        max: 180.0,
        base_rate: 0.35,
    },
    FeatureDef {
        name: "NISysABP",
        kind: FeatureKind::Vital,
        mean: 120.0,
        std: 18.0,
        min: 40.0,
        max: 250.0,
        base_rate: 0.35,
    },
    FeatureDef {
        name: "PaCO2",
        kind: FeatureKind::Lab,
        mean: 40.0,
        std: 6.0,
        min: 10.0,
        max: 110.0,
        base_rate: 0.07,
    },
    FeatureDef {
        name: "PaO2",
        kind: FeatureKind::Lab,
        mean: 95.0,
        std: 25.0,
        min: 25.0,
        max: 500.0,
        base_rate: 0.07,
    },
    FeatureDef {
        name: "pH",
        kind: FeatureKind::Lab,
        mean: 7.40,
        std: 0.05,
        min: 6.7,
        max: 7.9,
        base_rate: 0.07,
    },
    FeatureDef {
        name: "Platelets",
        kind: FeatureKind::Lab,
        mean: 240.0,
        std: 80.0,
        min: 5.0,
        max: 1200.0,
        base_rate: 0.06,
    },
    FeatureDef {
        name: "RespRate",
        kind: FeatureKind::Vital,
        mean: 18.0,
        std: 4.0,
        min: 4.0,
        max: 60.0,
        base_rate: 0.45,
    },
    FeatureDef {
        name: "SaO2",
        kind: FeatureKind::Vital,
        mean: 97.0,
        std: 2.0,
        min: 50.0,
        max: 100.0,
        base_rate: 0.25,
    },
    FeatureDef {
        name: "SysABP",
        kind: FeatureKind::Vital,
        mean: 125.0,
        std: 17.0,
        min: 40.0,
        max: 260.0,
        base_rate: 0.55,
    },
    FeatureDef {
        name: "Temp",
        kind: FeatureKind::Vital,
        mean: 37.0,
        std: 0.6,
        min: 32.0,
        max: 42.5,
        base_rate: 0.30,
    },
    FeatureDef {
        name: "TroponinI",
        kind: FeatureKind::Occasional,
        mean: 0.3,
        std: 0.5,
        min: 0.0,
        max: 50.0,
        base_rate: 0.015,
    },
    FeatureDef {
        name: "TroponinT",
        kind: FeatureKind::Occasional,
        mean: 0.05,
        std: 0.1,
        min: 0.0,
        max: 25.0,
        base_rate: 0.015,
    },
    FeatureDef {
        name: "Urine",
        kind: FeatureKind::Vital,
        mean: 100.0,
        std: 60.0,
        min: 0.0,
        max: 1000.0,
        base_rate: 0.45,
    },
    FeatureDef {
        name: "WBC",
        kind: FeatureKind::Lab,
        mean: 9.0,
        std: 3.0,
        min: 0.5,
        max: 80.0,
        base_rate: 0.08,
    },
    FeatureDef {
        name: "Weight",
        kind: FeatureKind::Occasional,
        mean: 80.0,
        std: 18.0,
        min: 30.0,
        max: 250.0,
        base_rate: 0.02,
    },
];

/// Looks a feature up by name (case-sensitive).
pub fn feature_by_name(name: &str) -> Option<FeatureId> {
    FEATURES.iter().position(|f| f.name == name)
}

/// The ten "essential" features the paper's Table II / Figure 9 focus on
/// for the DLA case study, by catalog index.
pub fn essential_features() -> [FeatureId; 10] {
    [
        feature_by_name("FiO2").unwrap(),
        feature_by_name("Glucose").unwrap(),
        feature_by_name("HCO3").unwrap(),
        feature_by_name("HCT").unwrap(),
        feature_by_name("HR").unwrap(),
        feature_by_name("Lactate").unwrap(),
        feature_by_name("MAP").unwrap(),
        feature_by_name("Temp").unwrap(),
        feature_by_name("pH").unwrap(),
        feature_by_name("WBC").unwrap(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_37_unique_names() {
        let mut names: Vec<&str> = FEATURES.iter().map(|f| f.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), NUM_FEATURES);
    }

    #[test]
    fn ranges_are_consistent() {
        for f in &FEATURES {
            assert!(f.min < f.max, "{}: min >= max", f.name);
            assert!(
                f.min <= f.mean && f.mean <= f.max,
                "{}: mean outside range",
                f.name
            );
            assert!(f.std > 0.0, "{}: non-positive std", f.name);
            assert!((0.0..=1.0).contains(&f.base_rate), "{}: bad rate", f.name);
        }
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(feature_by_name("Glucose"), Some(11));
        assert_eq!(FEATURES[feature_by_name("pH").unwrap()].name, "pH");
        assert_eq!(feature_by_name("nope"), None);
    }

    #[test]
    fn essential_set_matches_table2() {
        let names: Vec<&str> = essential_features()
            .iter()
            .map(|&i| FEATURES[i].name)
            .collect();
        assert_eq!(
            names,
            ["FiO2", "Glucose", "HCO3", "HCT", "HR", "Lactate", "MAP", "Temp", "pH", "WBC"]
        );
    }

    #[test]
    fn expected_missing_rate_near_80_percent() {
        // The mean base rate across features approximates the observation
        // density at baseline severity; informative sampling adds a little.
        let mean_rate: f32 =
            FEATURES.iter().map(|f| f.base_rate).sum::<f32>() / NUM_FEATURES as f32;
        assert!(
            (0.15..=0.22).contains(&mean_rate),
            "baseline observation density {mean_rate} should be ~0.18 for an ~80% missing rate"
        );
    }
}
