//! The latent severity process driving each synthetic patient.
//!
//! Severity `s(t) ∈ [0, ~1.2]` is a piecewise drift-diffusion: quiet before
//! onset, rising during the acute phase, and — when treatment succeeds —
//! falling back afterwards. The same curve drives (a) how far each
//! archetype-affected feature deviates from normal, (b) how densely the
//! patient is sampled (informative missingness), and (c) the outcome
//! labels. That single shared cause is what makes the planted feature- and
//! time-level interactions *learnable*.

use rand::Rng;

/// Parameters of one patient's severity trajectory.
#[derive(Debug, Clone, Copy)]
pub struct SeverityParams {
    /// Hour at which the acute pathology starts building.
    pub onset: usize,
    /// Severity gained per hour during the acute phase.
    pub rise_rate: f32,
    /// Hour at which treatment begins to work, if it does.
    pub treatment_at: Option<usize>,
    /// Severity lost per hour once treatment works.
    pub recovery_rate: f32,
    /// Standard deviation of the per-hour noise.
    pub volatility: f32,
    /// Soft cap on severity (logistic squashing above ~this value).
    pub peak_cap: f32,
}

impl SeverityParams {
    /// A quiet, low-severity stay (the `Stable` archetype).
    pub fn quiet() -> Self {
        SeverityParams {
            onset: usize::MAX,
            rise_rate: 0.0,
            treatment_at: None,
            recovery_rate: 0.0,
            volatility: 0.015,
            peak_cap: 0.25,
        }
    }
}

/// Summary statistics of a severity curve, consumed by the label model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeveritySummary {
    /// Severity at the final hour.
    pub last: f32,
    /// Mean severity over the stay.
    pub mean: f32,
    /// Peak severity.
    pub peak: f32,
    /// Mean severity over the final quarter of the stay (captures whether
    /// the patient was recovering or deteriorating at the end).
    pub late_mean: f32,
}

/// Simulates a severity curve of length `t_len`.
pub fn severity_curve(
    params: &SeverityParams,
    t_len: usize,
    rng: &mut (impl Rng + ?Sized),
) -> Vec<f32> {
    assert!(t_len > 0, "empty stay");
    let mut s = 0.05f32 + rng.gen::<f32>() * 0.05;
    let mut curve = Vec::with_capacity(t_len);
    for t in 0..t_len {
        let drift = if t < params.onset {
            // pre-onset: relax toward a low baseline
            (0.05 - s) * 0.2
        } else if params.treatment_at.is_none_or(|tr| t < tr) {
            // acute phase: rise, slowing as the soft cap approaches
            params.rise_rate * (1.0 - s / params.peak_cap.max(1e-3)).max(0.0)
        } else {
            // under effective treatment: recover toward a mild residual
            -params.recovery_rate * (s - 0.08).max(0.0)
        };
        let noise = gauss(rng) * params.volatility;
        s = (s + drift + noise).clamp(0.0, 1.2);
        curve.push(s);
    }
    curve
}

/// Summarizes a severity curve for the label model.
pub fn summarize(curve: &[f32]) -> SeveritySummary {
    assert!(!curve.is_empty());
    let n = curve.len();
    let mean = curve.iter().sum::<f32>() / n as f32;
    let peak = curve.iter().copied().fold(0.0f32, f32::max);
    let late_start = n - (n / 4).max(1);
    let late = &curve[late_start..];
    let late_mean = late.iter().sum::<f32>() / late.len() as f32;
    SeveritySummary {
        last: curve[n - 1],
        mean,
        peak,
        late_mean,
    }
}

/// The raw severity score that the outcome models threshold; combines the
/// terminal state (dominant for mortality) with accumulated burden.
pub fn outcome_score(summary: &SeveritySummary, lethality: f32) -> f32 {
    lethality * (1.6 * summary.late_mean + 0.7 * summary.peak + 0.4 * summary.mean)
}

/// One standard normal via Box–Muller (local helper; the tensor crate's
/// version works on whole tensors).
fn gauss(rng: &mut (impl Rng + ?Sized)) -> f32 {
    let u1: f32 = 1.0 - rng.gen::<f32>();
    let u2: f32 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn acute(treated: bool) -> SeverityParams {
        SeverityParams {
            onset: 10,
            rise_rate: 0.12,
            treatment_at: treated.then_some(28),
            recovery_rate: 0.10,
            volatility: 0.01,
            peak_cap: 1.0,
        }
    }

    #[test]
    fn quiet_patient_stays_low() {
        let mut rng = StdRng::seed_from_u64(1);
        let curve = severity_curve(&SeverityParams::quiet(), 48, &mut rng);
        assert!(
            curve.iter().all(|&s| s < 0.3),
            "max {}",
            curve.iter().cloned().fold(0.0, f32::max)
        );
    }

    #[test]
    fn acute_patient_rises_after_onset() {
        let mut rng = StdRng::seed_from_u64(2);
        let curve = severity_curve(&acute(false), 48, &mut rng);
        let pre = curve[..10].iter().sum::<f32>() / 10.0;
        let post = curve[30..].iter().sum::<f32>() / 18.0;
        assert!(post > pre + 0.3, "pre {pre}, post {post}");
    }

    #[test]
    fn treatment_brings_severity_down() {
        let mut rng = StdRng::seed_from_u64(3);
        let curve = severity_curve(&acute(true), 48, &mut rng);
        let peak_window = curve[24..30].iter().cloned().fold(0.0f32, f32::max);
        let end = curve[47];
        assert!(end < peak_window - 0.2, "peak {peak_window}, end {end}");
    }

    #[test]
    fn severity_stays_in_bounds() {
        let rng = StdRng::seed_from_u64(4);
        for seed in 0..20 {
            let mut r = StdRng::seed_from_u64(seed);
            let curve = severity_curve(&acute(seed % 2 == 0), 48, &mut r);
            assert!(curve.iter().all(|&s| (0.0..=1.2).contains(&s)));
        }
        let _ = rng;
    }

    #[test]
    fn summary_fields_are_consistent() {
        let curve = vec![0.1, 0.5, 0.9, 0.3];
        let s = summarize(&curve);
        assert_eq!(s.last, 0.3);
        assert_eq!(s.peak, 0.9);
        assert!((s.mean - 0.45).abs() < 1e-6);
        assert_eq!(s.late_mean, 0.3); // last quarter of 4 = 1 sample
    }

    #[test]
    fn untreated_scores_above_treated() {
        let mut worse = 0;
        for seed in 0..20 {
            let mut r1 = StdRng::seed_from_u64(seed);
            let mut r2 = StdRng::seed_from_u64(seed);
            let untreated = summarize(&severity_curve(&acute(false), 48, &mut r1));
            let treated = summarize(&severity_curve(&acute(true), 48, &mut r2));
            if outcome_score(&untreated, 1.0) > outcome_score(&treated, 1.0) {
                worse += 1;
            }
        }
        assert!(
            worse >= 18,
            "untreated should almost always score worse: {worse}/20"
        );
    }
}
