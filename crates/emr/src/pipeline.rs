//! Preprocessing faithful to the paper's §IV-B and §V-A: train-fitted
//! standardization, the three-type missing-data handling, and batching into
//! tensors.

use crate::features::NUM_FEATURES;
use crate::synth::{Cohort, Patient};
use elda_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Which prediction task a batch's labels come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Task {
    /// In-hospital mortality prediction.
    Mortality,
    /// Length-of-stay > 7 days prediction.
    LosGt7,
}

impl Task {
    /// Display name used by the experiment harnesses.
    pub fn name(self) -> &'static str {
        match self {
            Task::Mortality => "mortality",
            Task::LosGt7 => "los>7",
        }
    }
}

/// One admission after preprocessing. All grids are row-major
/// `(t_len, NUM_FEATURES)`.
#[derive(Debug, Clone)]
pub struct ProcessedSample {
    /// Standardized, imputed values (clipped to the pipeline bounds).
    pub x: Vec<f32>,
    /// `{0,1}` observation mask (1 where a record existed).
    pub mask: Vec<f32>,
    /// Hours since the previous observation of the feature, scaled by
    /// `1/t_len` (GRU-D's δ input).
    pub delta: Vec<f32>,
    /// Per-feature never-observed flags (the paper's type-(iii)
    /// missingness, embedded via `V^m`), length `NUM_FEATURES`.
    pub never: Vec<f32>,
    /// Mortality label.
    pub y_mortality: f32,
    /// LOS > 7 days label.
    pub y_los: f32,
    /// Raw length of stay in days (regression target).
    pub y_los_days: f32,
}

/// Standardization + imputation fitted on the training split.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Pipeline {
    t_len: usize,
    means: Vec<f32>,
    stds: Vec<f32>,
    /// Standardized values are clipped into `[clip.0, clip.1]`; the paper's
    /// Bi-directional Embedding bounds `a = −3, b = 3` assume this range.
    pub clip: (f32, f32),
}

impl Pipeline {
    /// Fits per-feature mean/std on the *observed* values of the training
    /// admissions only (no leakage from validation/test).
    pub fn fit(cohort: &Cohort, train_idx: &[usize]) -> Pipeline {
        assert!(!train_idx.is_empty(), "empty training split");
        let t_len = cohort.t_len();
        let mut sums = vec![0.0f64; NUM_FEATURES];
        let mut sqs = vec![0.0f64; NUM_FEATURES];
        let mut counts = vec![0usize; NUM_FEATURES];
        for &i in train_idx {
            let p = &cohort.patients[i];
            for t in 0..t_len {
                for f in 0..NUM_FEATURES {
                    let v = p.value(t, f);
                    if !v.is_nan() {
                        sums[f] += v as f64;
                        sqs[f] += (v as f64) * (v as f64);
                        counts[f] += 1;
                    }
                }
            }
        }
        let means: Vec<f32> = (0..NUM_FEATURES)
            .map(|f| {
                if counts[f] > 0 {
                    (sums[f] / counts[f] as f64) as f32
                } else {
                    0.0
                }
            })
            .collect();
        let stds: Vec<f32> = (0..NUM_FEATURES)
            .map(|f| {
                if counts[f] > 1 {
                    let m = sums[f] / counts[f] as f64;
                    let var = (sqs[f] / counts[f] as f64 - m * m).max(1e-8);
                    var.sqrt() as f32
                } else {
                    1.0
                }
            })
            .collect();
        Pipeline {
            t_len,
            means,
            stds,
            clip: (-3.0, 3.0),
        }
    }

    /// Per-feature training means (natural units).
    pub fn means(&self) -> &[f32] {
        &self.means
    }

    /// Per-feature training standard deviations (natural units).
    pub fn stds(&self) -> &[f32] {
        &self.stds
    }

    /// Hours per stay this pipeline was fitted for.
    pub fn t_len(&self) -> usize {
        self.t_len
    }

    /// Standardizes one natural-unit value of feature `f` (with clipping).
    pub fn standardize(&self, f: usize, v: f32) -> f32 {
        ((v - self.means[f]) / self.stds[f]).clamp(self.clip.0, self.clip.1)
    }

    /// Same fitted statistics, different window length. Used to build
    /// reference models for streaming prefixes shorter (or longer) than
    /// the window this pipeline was fitted for: standardization is
    /// per-feature and window-independent, only the grid length changes.
    pub fn with_t_len(&self, t_len: usize) -> Pipeline {
        Pipeline {
            t_len,
            means: self.means.clone(),
            stds: self.stds.clone(),
            clip: self.clip,
        }
    }

    /// Applies the paper's three-type missing-data handling to one patient:
    ///
    /// 1. never observed in the stay → global mean (standardized 0) and the
    ///    `never` flag set, to be embedded via `V^m`;
    /// 2. before the first observation → global mean (standardized 0);
    /// 3. gaps after an observation → last observation carried forward.
    pub fn process(&self, patient: &Patient) -> ProcessedSample {
        let t_len = self.t_len;
        let mut x = vec![0.0f32; t_len * NUM_FEATURES];
        let mut mask = vec![0.0f32; t_len * NUM_FEATURES];
        let mut delta = vec![0.0f32; t_len * NUM_FEATURES];
        let mut never = vec![0.0f32; NUM_FEATURES];
        #[allow(clippy::needless_range_loop)] // f also strides the (t,f) grids
        for f in 0..NUM_FEATURES {
            let mut last: Option<f32> = None;
            let mut gap = 0.0f32;
            for t in 0..t_len {
                let idx = t * NUM_FEATURES + f;
                let raw = patient.value(t, f);
                delta[idx] = gap / t_len as f32;
                if raw.is_nan() {
                    x[idx] = last.unwrap_or(0.0); // forward fill, else global mean
                    gap += 1.0;
                } else {
                    let z = self.standardize(f, raw);
                    x[idx] = z;
                    mask[idx] = 1.0;
                    last = Some(z);
                    gap = 1.0;
                }
            }
            if last.is_none() {
                never[f] = 1.0;
            }
        }
        ProcessedSample {
            x,
            mask,
            delta,
            never,
            y_mortality: if patient.mortality { 1.0 } else { 0.0 },
            y_los: if patient.los_gt7 { 1.0 } else { 0.0 },
            y_los_days: patient.los_days,
        }
    }

    /// Processes every admission in the cohort, in order.
    pub fn process_all(&self, cohort: &Cohort) -> Vec<ProcessedSample> {
        cohort.patients.iter().map(|p| self.process(p)).collect()
    }
}

/// A batch of processed samples as tensors, ready for a model forward.
pub struct Batch {
    /// Values `(B, T, C)`.
    pub x: Tensor,
    /// Observation mask `(B, T, C)`.
    pub mask: Tensor,
    /// GRU-D time deltas `(B, T, C)`.
    pub delta: Tensor,
    /// Never-observed flags `(B, C)`.
    pub never: Tensor,
    /// Task labels `(B, 1)`.
    pub y: Tensor,
}

impl Batch {
    /// Gathers `indices` out of `samples` for `task`.
    ///
    /// # Panics
    /// Panics on an empty index list.
    pub fn gather(
        samples: &[ProcessedSample],
        indices: &[usize],
        t_len: usize,
        task: Task,
    ) -> Batch {
        assert!(!indices.is_empty(), "empty batch");
        let b = indices.len();
        let grid = t_len * NUM_FEATURES;
        let mut x = Vec::with_capacity(b * grid);
        let mut mask = Vec::with_capacity(b * grid);
        let mut delta = Vec::with_capacity(b * grid);
        let mut never = Vec::with_capacity(b * NUM_FEATURES);
        let mut y = Vec::with_capacity(b);
        for &i in indices {
            let s = &samples[i];
            debug_assert_eq!(s.x.len(), grid, "sample/t_len mismatch");
            x.extend_from_slice(&s.x);
            mask.extend_from_slice(&s.mask);
            delta.extend_from_slice(&s.delta);
            never.extend_from_slice(&s.never);
            y.push(match task {
                Task::Mortality => s.y_mortality,
                Task::LosGt7 => s.y_los,
            });
        }
        Batch {
            x: Tensor::from_vec(x, &[b, t_len, NUM_FEATURES]),
            mask: Tensor::from_vec(mask, &[b, t_len, NUM_FEATURES]),
            delta: Tensor::from_vec(delta, &[b, t_len, NUM_FEATURES]),
            never: Tensor::from_vec(never, &[b, NUM_FEATURES]),
            y: Tensor::from_vec(y, &[b, 1]),
        }
    }

    /// Batch size.
    pub fn len(&self) -> usize {
        self.x.shape()[0]
    }

    /// Always false — batches are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Labels as a plain vector (for metric computation).
    pub fn labels(&self) -> Vec<f32> {
        self.y.data().to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::CohortConfig;

    fn setup() -> (Cohort, Pipeline, Vec<ProcessedSample>) {
        let cohort = Cohort::generate(CohortConfig::small(80, 5));
        let train: Vec<usize> = (0..64).collect();
        let pipe = Pipeline::fit(&cohort, &train);
        let samples = pipe.process_all(&cohort);
        (cohort, pipe, samples)
    }

    #[test]
    fn standardized_observed_values_are_roughly_centered() {
        let (_, _, samples) = setup();
        let mut sum = 0.0f64;
        let mut n = 0usize;
        for s in &samples {
            for (x, m) in s.x.iter().zip(&s.mask) {
                if *m == 1.0 {
                    sum += *x as f64;
                    n += 1;
                }
            }
        }
        let mean = sum / n as f64;
        assert!(mean.abs() < 0.25, "observed mean {mean}");
    }

    #[test]
    fn values_are_clipped() {
        let (_, _, samples) = setup();
        for s in &samples {
            assert!(s.x.iter().all(|&v| (-3.0..=3.0).contains(&v)));
        }
    }

    #[test]
    fn forward_fill_holds_last_observation() {
        let (cohort, pipe, _) = setup();
        // Find a (patient, feature) with an observation followed by a gap.
        'outer: for p in &cohort.patients {
            for f in 0..NUM_FEATURES {
                for t in 0..cohort.t_len() - 2 {
                    if p.observed(t, f) && !p.observed(t + 1, f) {
                        let s = pipe.process(p);
                        let idx0 = t * NUM_FEATURES + f;
                        let idx1 = (t + 1) * NUM_FEATURES + f;
                        assert_eq!(s.x[idx1], s.x[idx0], "gap not forward-filled");
                        assert_eq!(s.mask[idx1], 0.0);
                        break 'outer;
                    }
                }
            }
        }
    }

    #[test]
    fn before_first_observation_is_global_mean() {
        let (cohort, pipe, _) = setup();
        'outer: for p in &cohort.patients {
            for f in 0..NUM_FEATURES {
                if !p.observed(0, f) && !p.never_observed(f) {
                    let s = pipe.process(p);
                    assert_eq!(s.x[f], 0.0, "pre-first-obs should be standardized mean");
                    break 'outer;
                }
            }
        }
    }

    #[test]
    fn never_observed_flags_match_patient() {
        let (cohort, pipe, _) = setup();
        for p in cohort.patients.iter().take(20) {
            let s = pipe.process(p);
            for f in 0..NUM_FEATURES {
                assert_eq!(s.never[f] == 1.0, p.never_observed(f), "feature {f}");
            }
        }
    }

    #[test]
    fn delta_counts_hours_since_last_observation() {
        let (cohort, pipe, _) = setup();
        let t_len = cohort.t_len() as f32;
        let p = &cohort.patients[0];
        let s = pipe.process(p);
        for f in 0..NUM_FEATURES {
            // delta at t=0 is always 0 (nothing before admission)
            assert_eq!(s.delta[f], 0.0);
            let mut expected_gap = 0.0f32;
            for t in 0..cohort.t_len() {
                let idx = t * NUM_FEATURES + f;
                assert!((s.delta[idx] - expected_gap / t_len).abs() < 1e-6);
                if s.mask[idx] == 1.0 {
                    expected_gap = 1.0;
                } else {
                    expected_gap += 1.0;
                }
            }
        }
    }

    #[test]
    fn batch_shapes_and_labels() {
        let (cohort, _, samples) = setup();
        let idx = [0usize, 3, 5, 7];
        let batch = Batch::gather(&samples, &idx, cohort.t_len(), Task::Mortality);
        assert_eq!(batch.x.shape(), &[4, 48, NUM_FEATURES]);
        assert_eq!(batch.never.shape(), &[4, NUM_FEATURES]);
        assert_eq!(batch.y.shape(), &[4, 1]);
        for (k, &i) in idx.iter().enumerate() {
            assert_eq!(batch.y.data()[k], samples[i].y_mortality);
        }
        let los = Batch::gather(&samples, &idx, cohort.t_len(), Task::LosGt7);
        for (k, &i) in idx.iter().enumerate() {
            assert_eq!(los.y.data()[k], samples[i].y_los);
        }
    }

    #[test]
    fn pipeline_fit_ignores_non_train_patients() {
        let cohort = Cohort::generate(CohortConfig::small(100, 6));
        let p1 = Pipeline::fit(&cohort, &(0..50).collect::<Vec<_>>());
        let p2 = Pipeline::fit(&cohort, &(50..100).collect::<Vec<_>>());
        // Different halves → (slightly) different statistics.
        assert_ne!(p1.means(), p2.means());
    }
}
