//! Deterministic train/validation/test splitting (the paper's 80/10/10).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Index sets of one split.
#[derive(Debug, Clone)]
pub struct SplitIndices {
    /// Training indices (80%).
    pub train: Vec<usize>,
    /// Validation indices (10%).
    pub val: Vec<usize>,
    /// Test indices (10%).
    pub test: Vec<usize>,
}

/// Shuffles `0..n` with `seed` and cuts 80/10/10.
///
/// # Panics
/// Panics when `n < 10` (a split fraction would be empty).
pub fn split_indices(n: usize, seed: u64) -> SplitIndices {
    assert!(n >= 10, "need at least 10 samples to split 80/10/10");
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(&mut StdRng::seed_from_u64(seed));
    let n_train = n * 8 / 10;
    let n_val = n / 10;
    SplitIndices {
        train: idx[..n_train].to_vec(),
        val: idx[n_train..n_train + n_val].to_vec(),
        test: idx[n_train + n_val..].to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn split_partitions_all_indices() {
        let s = split_indices(100, 1);
        assert_eq!(s.train.len(), 80);
        assert_eq!(s.val.len(), 10);
        assert_eq!(s.test.len(), 10);
        let all: HashSet<usize> = s
            .train
            .iter()
            .chain(&s.val)
            .chain(&s.test)
            .copied()
            .collect();
        assert_eq!(all.len(), 100);
    }

    #[test]
    fn split_is_deterministic() {
        assert_eq!(split_indices(50, 9).train, split_indices(50, 9).train);
        assert_ne!(split_indices(50, 9).train, split_indices(50, 10).train);
    }

    #[test]
    fn odd_sizes_leave_remainder_in_test() {
        let s = split_indices(103, 2);
        assert_eq!(s.train.len(), 82);
        assert_eq!(s.val.len(), 10);
        assert_eq!(s.test.len(), 11);
    }

    #[test]
    #[should_panic(expected = "at least 10")]
    fn tiny_n_panics() {
        split_indices(5, 0);
    }
}
