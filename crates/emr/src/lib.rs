#![warn(missing_docs)]
//! # elda-emr
//!
//! Synthetic ICU EMR cohorts and the preprocessing pipeline of the ELDA
//! paper.
//!
//! The paper evaluates on PhysioNet Challenge 2012 and MIMIC-III — both
//! credential-gated clinical datasets. This crate substitutes them with a
//! generative cohort simulator that plants exactly the signals the paper's
//! models exploit:
//!
//! * the same **37 PhysioNet medical features** with physiological ranges
//!   ([`features`]);
//! * **archetype-driven correlated abnormality patterns** — the paper's own
//!   motivating examples (DM, DM+DKA, DM+DLA) plus sepsis, cardiogenic
//!   shock, renal and respiratory failure ([`archetype`]);
//! * a **latent severity process** per patient that drives both the feature
//!   trajectories and the labels (mortality, length-of-stay) ([`severity`]);
//! * **informative missingness** (~80% missing overall, denser sampling
//!   while the patient is abnormal — the mechanism behind the paper's
//!   "records are richer at critical time steps" observation) ([`synth`]);
//! * the paper's **three-type missing-data handling** (global mean before
//!   first observation / forward-fill gaps / never-observed flag) and
//!   train-fitted standardization ([`pipeline`]).
//!
//! Preset cohorts sized to Table I live in [`presets`]; the dataset
//! statistics the table reports are computed by [`stats`].

pub mod archetype;
pub mod features;
pub mod io;
pub mod pipeline;
pub mod presets;
pub mod severity;
pub mod split;
pub mod stats;
pub mod synth;

pub use archetype::{Archetype, ARCHETYPES};
pub use features::{
    essential_features, feature_by_name, FeatureDef, FeatureId, FEATURES, NUM_FEATURES,
};
pub use pipeline::{Batch, Pipeline, ProcessedSample, Task};
pub use presets::{mimic3_like, physionet2012_like, CohortPreset};
pub use split::{split_indices, SplitIndices};
pub use stats::{cohort_stats, CohortStats};
pub use synth::{Cohort, CohortConfig, Patient};
