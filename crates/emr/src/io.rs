//! PhysioNet Challenge 2012 file-format I/O.
//!
//! The paper's primary dataset ships as one CSV per admission in the form
//!
//! ```text
//! Time,Parameter,Value
//! 00:07,HR,88
//! 01:32,Glucose,263
//! ```
//!
//! plus an outcomes file
//!
//! ```text
//! RecordID,Length_of_stay,In-hospital_death
//! 132539,8,0
//! ```
//!
//! This module reads that format into [`Patient`]s — so a user holding the
//! real (credential-gated) data can drop it straight into this library —
//! and writes synthetic cohorts back out in the same format, which is also
//! how the round-trip tests pin the parser. Only the 37 catalog features
//! are kept; sub-hour records are binned to the hour, keeping the last
//! record in each bin (the paper processes hourly steps).

use crate::archetype::Archetype;
use crate::features::{feature_by_name, FEATURES, NUM_FEATURES};
use crate::synth::{Cohort, CohortConfig, Patient};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// Errors from reading the PhysioNet format.
#[derive(Debug)]
pub enum IoError {
    /// Filesystem failure.
    Fs(std::io::Error),
    /// A malformed line, with file/line context.
    Parse {
        /// Which file (record id or path).
        file: String,
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// An admission present in the data had no outcomes row (or vice versa).
    MissingOutcome(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Fs(e) => write!(f, "filesystem error: {e}"),
            IoError::Parse {
                file,
                line,
                message,
            } => {
                write!(f, "{file}:{line}: {message}")
            }
            IoError::MissingOutcome(id) => write!(f, "record {id} has no outcomes row"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Fs(e)
    }
}

/// Outcome labels for one admission, as stored in the outcomes file.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Outcome {
    /// Length of stay in days.
    pub los_days: f32,
    /// In-hospital death flag.
    pub died: bool,
}

/// Parses one admission's record text (`Time,Parameter,Value` lines) into
/// an hourly `(t_len, NUM_FEATURES)` grid with `NaN` for missing slots.
///
/// Records beyond `t_len` hours are ignored (the paper uses the first 48h);
/// multiple records within one hour keep the last. Unknown parameters are
/// skipped (the real files carry demographics like `RecordID`/`Age` that
/// the 37-feature analysis drops). Negative values are treated as the
/// dataset's "erroneous value" sentinel and skipped, as §V-A describes.
pub fn parse_record(name: &str, text: &str, t_len: usize) -> Result<Vec<f32>, IoError> {
    let mut grid = vec![f32::NAN; t_len * NUM_FEATURES];
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || lineno == 0 && line.eq_ignore_ascii_case("time,parameter,value") {
            continue;
        }
        let mut parts = line.splitn(3, ',');
        let (time, param, value) = match (parts.next(), parts.next(), parts.next()) {
            (Some(t), Some(p), Some(v)) => (t, p, v),
            _ => {
                return Err(IoError::Parse {
                    file: name.to_string(),
                    line: lineno + 1,
                    message: format!("expected Time,Parameter,Value, got {line:?}"),
                })
            }
        };
        let hour = parse_hour(time).ok_or_else(|| IoError::Parse {
            file: name.to_string(),
            line: lineno + 1,
            message: format!("bad timestamp {time:?}"),
        })?;
        if hour >= t_len {
            continue;
        }
        let Some(fid) = feature_by_name(param) else {
            continue; // demographics / unknown parameters
        };
        let v: f32 = value.trim().parse().map_err(|_| IoError::Parse {
            file: name.to_string(),
            line: lineno + 1,
            message: format!("bad value {value:?}"),
        })?;
        if v < 0.0 {
            continue; // the dataset's error sentinel (-1), cleaned per §V-A
        }
        grid[hour * NUM_FEATURES + fid] = v;
    }
    Ok(grid)
}

/// Parses `HH:MM` into the hour bin.
fn parse_hour(time: &str) -> Option<usize> {
    let (h, m) = time.split_once(':')?;
    let h: usize = h.trim().parse().ok()?;
    let _m: usize = m.trim().parse().ok()?;
    Some(h)
}

/// Parses an outcomes CSV (`RecordID,Length_of_stay,In-hospital_death`
/// header in any column order) into a record-id map.
pub fn parse_outcomes(text: &str) -> Result<HashMap<String, Outcome>, IoError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or_else(|| IoError::Parse {
        file: "outcomes".into(),
        line: 1,
        message: "empty outcomes file".into(),
    })?;
    let cols: Vec<&str> = header.split(',').map(str::trim).collect();
    let find = |name: &str| cols.iter().position(|c| c.eq_ignore_ascii_case(name));
    let id_col = find("RecordID").ok_or_else(|| IoError::Parse {
        file: "outcomes".into(),
        line: 1,
        message: "missing RecordID column".into(),
    })?;
    let los_col = find("Length_of_stay").ok_or_else(|| IoError::Parse {
        file: "outcomes".into(),
        line: 1,
        message: "missing Length_of_stay column".into(),
    })?;
    let death_col = find("In-hospital_death").ok_or_else(|| IoError::Parse {
        file: "outcomes".into(),
        line: 1,
        message: "missing In-hospital_death column".into(),
    })?;
    let mut out = HashMap::new();
    for (lineno, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        let get = |col: usize| -> Result<&str, IoError> {
            fields.get(col).copied().ok_or_else(|| IoError::Parse {
                file: "outcomes".into(),
                line: lineno + 1,
                message: "short row".into(),
            })
        };
        let id = get(id_col)?.to_string();
        let los_days: f32 = get(los_col)?.parse().map_err(|_| IoError::Parse {
            file: "outcomes".into(),
            line: lineno + 1,
            message: "bad Length_of_stay".into(),
        })?;
        let died = get(death_col)? == "1";
        out.insert(id, Outcome { los_days, died });
    }
    Ok(out)
}

/// Builds a [`Patient`] from a parsed grid and outcome.
pub fn patient_from_grid(id: usize, grid: Vec<f32>, t_len: usize, outcome: Outcome) -> Patient {
    assert_eq!(grid.len(), t_len * NUM_FEATURES);
    Patient {
        id,
        archetype: Archetype::Unknown,
        values: grid,
        severity: vec![0.0; t_len], // unknown for real data
        mortality: outcome.died,
        los_gt7: outcome.los_days > 7.0,
        los_days: outcome.los_days,
    }
}

/// Reads a PhysioNet-layout directory: every `*.txt` record file plus an
/// `Outcomes.txt` (or `outcomes.txt`) file.
pub fn read_physionet_dir(dir: &Path, t_len: usize) -> Result<Cohort, IoError> {
    let outcomes_path = ["Outcomes.txt", "outcomes.txt", "Outcomes-a.txt"]
        .iter()
        .map(|n| dir.join(n))
        .find(|p| p.exists())
        .ok_or_else(|| IoError::MissingOutcome("Outcomes.txt not found".into()))?;
    let outcomes = parse_outcomes(&fs::read_to_string(outcomes_path)?)?;

    let mut entries: Vec<_> = fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.extension().is_some_and(|x| x == "txt")
                && !p
                    .file_name()
                    .is_some_and(|n| n.to_string_lossy().to_lowercase().starts_with("outcomes"))
        })
        .collect();
    entries.sort();

    let mut patients = Vec::with_capacity(entries.len());
    for (idx, path) in entries.iter().enumerate() {
        let record_id = path
            .file_stem()
            .map(|s| s.to_string_lossy().to_string())
            .unwrap_or_default();
        let outcome = outcomes
            .get(&record_id)
            .copied()
            .ok_or_else(|| IoError::MissingOutcome(record_id.clone()))?;
        let text = fs::read_to_string(path)?;
        let grid = parse_record(&record_id, &text, t_len)?;
        patients.push(patient_from_grid(idx, grid, t_len, outcome));
    }
    Ok(Cohort {
        config: CohortConfig {
            name: format!("physionet:{}", dir.display()),
            n_patients: patients.len(),
            t_len,
            seed: 0,
            archetype_weights: [0.0; 8],
            target_mortality: 0.0,
            target_los_gt7: 0.0,
        },
        patients,
    })
}

/// Renders one patient in the record format (`Time,Parameter,Value`).
pub fn write_record(patient: &Patient, t_len: usize) -> String {
    let mut out = String::from("Time,Parameter,Value\n");
    for t in 0..t_len {
        for (f, def) in FEATURES.iter().enumerate() {
            let v = patient.value(t, f);
            if !v.is_nan() {
                // deterministic mid-hour minute keeps files stable
                let _ = writeln!(out, "{t:02}:30,{},{v}", def.name);
            }
        }
    }
    out
}

/// Renders a cohort's outcomes file.
pub fn write_outcomes(cohort: &Cohort) -> String {
    let mut out = String::from("RecordID,Length_of_stay,In-hospital_death\n");
    for p in &cohort.patients {
        let _ = writeln!(
            out,
            "{},{},{}",
            record_id(p.id),
            p.los_days,
            p.mortality as u8
        );
    }
    out
}

/// Writes a cohort as a PhysioNet-layout directory (one record file per
/// admission + `Outcomes.txt`). Useful for interoperating with existing
/// PhysioNet tooling and for the round-trip tests.
pub fn write_physionet_dir(cohort: &Cohort, dir: &Path) -> Result<(), IoError> {
    fs::create_dir_all(dir)?;
    for p in &cohort.patients {
        fs::write(
            dir.join(format!("{}.txt", record_id(p.id))),
            write_record(p, cohort.t_len()),
        )?;
    }
    fs::write(dir.join("Outcomes.txt"), write_outcomes(cohort))?;
    Ok(())
}

/// Stable six-digit record id for a cohort index (PhysioNet ids are six
/// digits starting at 132539; we mimic the shape).
fn record_id(id: usize) -> String {
    format!("{:06}", 100_000 + id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_well_formed_record() {
        let text = "Time,Parameter,Value\n00:07,HR,88\n00:30,Glucose,263\n01:32,Glucose,270\n";
        let grid = parse_record("r", text, 4).unwrap();
        let hr = feature_by_name("HR").unwrap();
        let glu = feature_by_name("Glucose").unwrap();
        assert_eq!(grid[hr], 88.0);
        assert_eq!(grid[glu], 263.0);
        assert_eq!(grid[NUM_FEATURES + glu], 270.0);
        assert!(grid[2 * NUM_FEATURES + glu].is_nan());
    }

    #[test]
    fn last_record_in_hour_wins() {
        let text = "Time,Parameter,Value\n02:01,HR,80\n02:59,HR,95\n";
        let grid = parse_record("r", text, 4).unwrap();
        let hr = feature_by_name("HR").unwrap();
        assert_eq!(grid[2 * NUM_FEATURES + hr], 95.0);
    }

    #[test]
    fn unknown_parameters_and_late_hours_are_skipped() {
        let text = "Time,Parameter,Value\n00:00,RecordID,132539\n00:00,Age,54\n99:00,HR,60\n";
        let grid = parse_record("r", text, 4).unwrap();
        assert!(grid.iter().all(|v| v.is_nan()));
    }

    #[test]
    fn negative_values_are_cleaned() {
        // the dataset uses -1 as an error sentinel; §V-A cleans them
        let text = "Time,Parameter,Value\n00:00,HR,-1\n";
        let grid = parse_record("r", text, 2).unwrap();
        let hr = feature_by_name("HR").unwrap();
        assert!(grid[hr].is_nan());
    }

    #[test]
    fn malformed_lines_error_with_location() {
        let text = "Time,Parameter,Value\nnot a line\n";
        let err = parse_record("rec42", text, 2).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("rec42:2"), "{msg}");
    }

    #[test]
    fn bad_timestamp_errors() {
        let err = parse_record("r", "Time,Parameter,Value\nxx:yy,HR,80\n", 2).unwrap_err();
        assert!(err.to_string().contains("bad timestamp"));
    }

    #[test]
    fn outcomes_parse_any_column_order() {
        let text = "In-hospital_death,RecordID,Length_of_stay\n1,132539,12\n0,132540,3\n";
        let o = parse_outcomes(text).unwrap();
        assert_eq!(
            o["132539"],
            Outcome {
                los_days: 12.0,
                died: true
            }
        );
        assert_eq!(
            o["132540"],
            Outcome {
                los_days: 3.0,
                died: false
            }
        );
    }

    #[test]
    fn outcomes_missing_column_errors() {
        let err = parse_outcomes("RecordID,Length_of_stay\n1,2\n").unwrap_err();
        assert!(err.to_string().contains("In-hospital_death"));
    }

    #[test]
    fn roundtrip_through_strings_preserves_observations() {
        let cohort = Cohort::generate(CohortConfig::small(12, 3));
        let p = &cohort.patients[4];
        let text = write_record(p, cohort.t_len());
        let grid = parse_record("rt", &text, cohort.t_len()).unwrap();
        for t in 0..cohort.t_len() {
            for f in 0..NUM_FEATURES {
                let orig = p.value(t, f);
                let back = grid[t * NUM_FEATURES + f];
                if orig.is_nan() {
                    assert!(back.is_nan(), "({t},{f}) appeared from nowhere");
                } else {
                    assert!((orig - back).abs() < 1e-4, "({t},{f}): {orig} vs {back}");
                }
            }
        }
    }

    #[test]
    fn roundtrip_through_directory() {
        let cohort = Cohort::generate(CohortConfig::small(10, 9));
        let dir = std::env::temp_dir().join(format!("elda-io-test-{}", std::process::id()));
        write_physionet_dir(&cohort, &dir).unwrap();
        let loaded = read_physionet_dir(&dir, cohort.t_len()).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(loaded.len(), cohort.len());
        for (orig, back) in cohort.patients.iter().zip(&loaded.patients) {
            assert_eq!(orig.mortality, back.mortality);
            assert_eq!(orig.los_gt7, back.los_gt7);
            assert_eq!(orig.num_records(), back.num_records());
            assert_eq!(back.archetype, Archetype::Unknown);
        }
    }

    #[test]
    fn loaded_cohort_flows_through_pipeline() {
        use crate::pipeline::Pipeline;
        let cohort = Cohort::generate(CohortConfig::small(10, 11));
        let text_patients: Vec<Patient> = cohort
            .patients
            .iter()
            .map(|p| {
                let text = write_record(p, cohort.t_len());
                let grid = parse_record("x", &text, cohort.t_len()).unwrap();
                patient_from_grid(
                    p.id,
                    grid,
                    cohort.t_len(),
                    Outcome {
                        los_days: p.los_days,
                        died: p.mortality,
                    },
                )
            })
            .collect();
        let loaded = Cohort {
            config: cohort.config.clone(),
            patients: text_patients,
        };
        let idx: Vec<usize> = (0..loaded.len()).collect();
        let pipe = Pipeline::fit(&loaded, &idx);
        let samples = pipe.process_all(&loaded);
        assert_eq!(samples.len(), 10);
        assert!(samples[0].x.iter().all(|v| v.is_finite()));
    }
}
