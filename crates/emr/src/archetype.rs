//! Clinical archetypes: correlated multi-feature abnormality patterns.
//!
//! Each archetype lists the features its pathophysiology pushes and in
//! which direction, in units of the feature's population standard
//! deviation per unit of latent severity. The diabetes complications (DKA,
//! DLA) follow the paper's own §I description; the remaining archetypes
//! give the cohort enough diversity that models must actually read the
//! interaction *patterns*, not a single marker.

use crate::features::{feature_by_name, FeatureId, NUM_FEATURES};

/// A named disease archetype.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Archetype {
    /// Uncomplicated stay: severity stays low, features hover near normal.
    Stable,
    /// Diabetes mellitus without complications: isolated hyperglycemia.
    DmOnly,
    /// DM + diabetic ketoacidosis: high glucose, low pH, low HCO3,
    /// compensatory tachypnea/tachycardia (paper §I).
    DmKetoacidosis,
    /// DM + diabetic lactic acidosis: high glucose, high lactate, low pH,
    /// low HCO3, low Temp, low MAP, raised FiO2 requirement (paper §I and
    /// the Patient-A case study of §V-D).
    DmLacticAcidosis,
    /// Septic shock: fever, tachycardia, hypotension, high WBC and lactate.
    Sepsis,
    /// Cardiogenic shock: hypotension, troponin release, poor perfusion.
    CardiogenicShock,
    /// Acute renal failure: creatinine/BUN/K accumulation, oliguria.
    RenalFailure,
    /// Respiratory failure: hypoxemia, CO2 retention, ventilator support.
    RespiratoryFailure,
    /// No generative archetype available — used for admissions loaded from
    /// external files rather than simulated (see [`crate::io`]).
    Unknown,
}

/// All archetypes, in the order used by cohort mixing weights.
pub const ARCHETYPES: [Archetype; 8] = [
    Archetype::Stable,
    Archetype::DmOnly,
    Archetype::DmKetoacidosis,
    Archetype::DmLacticAcidosis,
    Archetype::Sepsis,
    Archetype::CardiogenicShock,
    Archetype::RenalFailure,
    Archetype::RespiratoryFailure,
];

impl Archetype {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            Archetype::Stable => "Stable",
            Archetype::DmOnly => "DM-only",
            Archetype::DmKetoacidosis => "DM+DKA",
            Archetype::DmLacticAcidosis => "DM+DLA",
            Archetype::Sepsis => "Sepsis",
            Archetype::CardiogenicShock => "CardiogenicShock",
            Archetype::RenalFailure => "RenalFailure",
            Archetype::RespiratoryFailure => "RespiratoryFailure",
            Archetype::Unknown => "Unknown",
        }
    }

    /// Baseline lethality multiplier: how dangerous full-blown severity of
    /// this archetype is relative to the cohort average. Used by the label
    /// model in [`crate::severity`].
    pub fn lethality(self) -> f32 {
        match self {
            Archetype::Stable => 0.25,
            Archetype::DmOnly => 0.6,
            Archetype::DmKetoacidosis => 1.1,
            Archetype::DmLacticAcidosis => 1.5,
            Archetype::Sepsis => 1.6,
            Archetype::CardiogenicShock => 1.7,
            Archetype::RenalFailure => 1.2,
            Archetype::RespiratoryFailure => 1.4,
            Archetype::Unknown => 1.0,
        }
    }

    /// The archetype's effect vector: per feature, the shift (in population
    /// standard deviations) applied at latent severity 1.0.
    ///
    /// Feature pairs that co-move here are exactly the pairwise
    /// interactions the paper's Feature-level Interaction Learning Module
    /// is supposed to surface (e.g. Glucose–Lactate–pH for DLA).
    pub fn effects(self) -> [f32; NUM_FEATURES] {
        let mut e = [0.0f32; NUM_FEATURES];
        let mut set = |name: &str, v: f32| {
            e[feature_by_name(name).expect("known feature")] = v;
        };
        match self {
            Archetype::Stable | Archetype::Unknown => {}
            Archetype::DmOnly => {
                set("Glucose", 3.5);
                set("Urine", 0.8); // osmotic diuresis
            }
            Archetype::DmKetoacidosis => {
                set("Glucose", 4.5);
                set("pH", -2.8);
                set("HCO3", -2.8);
                set("K", 1.2);
                set("RespRate", 1.8); // Kussmaul breathing
                set("HR", 1.4);
                set("Urine", 1.0);
                set("GCS", -1.0);
            }
            Archetype::DmLacticAcidosis => {
                set("Glucose", 4.0);
                set("Lactate", 4.5);
                set("pH", -3.0);
                set("HCO3", -2.5);
                set("Temp", -1.2); // low temperature, per English & Williams 2004
                set("MAP", -1.8); // low blood pressure
                set("DiasABP", -1.4);
                set("SysABP", -1.6);
                set("FiO2", 2.0); // oxygen requirement climbs
                set("HR", 1.6);
                set("RespRate", 1.6); // deep and big breath
                set("GCS", -1.2);
            }
            Archetype::Sepsis => {
                set("Temp", 1.8);
                set("HR", 2.2);
                set("WBC", 2.6);
                set("Lactate", 2.4);
                set("MAP", -2.0);
                set("SysABP", -1.8);
                set("DiasABP", -1.6);
                set("RespRate", 1.8);
                set("Platelets", -1.4);
                set("Creatinine", 1.0);
                set("FiO2", 1.2);
            }
            Archetype::CardiogenicShock => {
                set("TroponinI", 3.5);
                set("TroponinT", 3.5);
                set("MAP", -2.4);
                set("SysABP", -2.2);
                set("HR", 1.6);
                set("Lactate", 2.0);
                set("Urine", -1.6);
                set("SaO2", -1.0);
                set("FiO2", 1.4);
            }
            Archetype::RenalFailure => {
                set("Creatinine", 3.5);
                set("BUN", 3.0);
                set("K", 2.0);
                set("Urine", -2.4);
                set("HCO3", -1.4);
                set("pH", -1.0);
                set("Mg", 1.0);
            }
            Archetype::RespiratoryFailure => {
                set("PaO2", -2.6);
                set("SaO2", -2.4);
                set("PaCO2", 2.2);
                set("pH", -1.2);
                set("RespRate", 2.2);
                set("FiO2", 2.6);
                set("MechVent", 2.0);
                set("HR", 1.2);
                set("GCS", -1.0);
            }
        }
        e
    }

    /// Features with a non-zero effect, as `(feature, effect)` pairs.
    pub fn affected_features(self) -> Vec<(FeatureId, f32)> {
        self.effects()
            .iter()
            .enumerate()
            .filter(|(_, &v)| v != 0.0)
            .map(|(i, &v)| (i, v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FEATURES;

    #[test]
    fn stable_has_no_effects() {
        assert!(Archetype::Stable.affected_features().is_empty());
    }

    #[test]
    fn dla_matches_paper_description() {
        // Paper §I: DLA = high lactic acid, low pH, high glucose.
        let e = Archetype::DmLacticAcidosis.effects();
        let idx = |n: &str| feature_by_name(n).unwrap();
        assert!(e[idx("Glucose")] > 2.0);
        assert!(e[idx("Lactate")] > 2.0);
        assert!(e[idx("pH")] < -2.0);
        assert!(e[idx("HCO3")] < 0.0);
        assert!(e[idx("Temp")] < 0.0);
        assert!(e[idx("MAP")] < 0.0);
        // HCT and WBC are DLA-irrelevant in the paper's Figure 9.
        assert_eq!(e[idx("HCT")], 0.0);
        assert_eq!(e[idx("WBC")], 0.0);
    }

    #[test]
    fn dka_matches_paper_description() {
        // Paper §I: DKA = high keto acid → low pH, high glucose.
        let e = Archetype::DmKetoacidosis.effects();
        let idx = |n: &str| feature_by_name(n).unwrap();
        assert!(e[idx("Glucose")] > 2.0);
        assert!(e[idx("pH")] < -2.0);
        assert_eq!(e[idx("Lactate")], 0.0, "DKA is not lactic acidosis");
    }

    #[test]
    fn every_effect_references_valid_features() {
        for a in ARCHETYPES {
            for (fid, eff) in a.affected_features() {
                assert!(fid < FEATURES.len());
                assert!(
                    eff.abs() <= 5.0,
                    "{}: effect {eff} implausibly large",
                    a.name()
                );
            }
        }
    }

    #[test]
    fn lethality_ordering_is_clinical() {
        assert!(Archetype::Stable.lethality() < Archetype::DmOnly.lethality());
        assert!(Archetype::DmOnly.lethality() < Archetype::DmLacticAcidosis.lethality());
        assert!(Archetype::DmKetoacidosis.lethality() < Archetype::DmLacticAcidosis.lethality());
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = ARCHETYPES.iter().map(|a| a.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ARCHETYPES.len());
    }
}
