//! Cohort statistics in the shape of the paper's Table I.

use crate::features::NUM_FEATURES;
use crate::synth::{Cohort, Patient};

/// The rows of Table I for one cohort.
#[derive(Debug, Clone, PartialEq)]
pub struct CohortStats {
    /// Cohort display name.
    pub name: String,
    /// Number of admissions.
    pub admissions: usize,
    /// Patients who left the hospital alive.
    pub survivors: usize,
    /// Patients who died in hospital.
    pub non_survivors: usize,
    /// Admissions with length of stay ≤ 7 days.
    pub los_le7: usize,
    /// Admissions with length of stay > 7 days.
    pub los_gt7: usize,
    /// Mean number of observed records per admission.
    pub avg_records_per_patient: f32,
    /// Number of medical features (always 37 here).
    pub num_features: usize,
    /// Fraction of (hour, feature) slots with no record, before imputation.
    pub missing_rate: f32,
}

/// Computes Table I's statistics for a cohort.
pub fn cohort_stats(cohort: &Cohort) -> CohortStats {
    let n = cohort.len();
    let non_survivors = cohort.patients.iter().filter(|p| p.mortality).count();
    let los_gt7 = cohort.patients.iter().filter(|p| p.los_gt7).count();
    let records: usize = cohort.patients.iter().map(Patient::num_records).sum();
    let slots = n * cohort.t_len() * NUM_FEATURES;
    CohortStats {
        name: cohort.config.name.clone(),
        admissions: n,
        survivors: n - non_survivors,
        non_survivors,
        los_le7: n - los_gt7,
        los_gt7,
        avg_records_per_patient: records as f32 / n as f32,
        num_features: NUM_FEATURES,
        missing_rate: 1.0 - records as f32 / slots as f32,
    }
}

impl std::fmt::Display for CohortStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "cohort: {}", self.name)?;
        writeln!(
            f,
            "  # of admissions                    {}",
            self.admissions
        )?;
        writeln!(
            f,
            "  survivor : non-survivor            {} : {}",
            self.survivors, self.non_survivors
        )?;
        writeln!(
            f,
            "  LOS<=7 : LOS>7                     {} : {}",
            self.los_le7, self.los_gt7
        )?;
        writeln!(
            f,
            "  avg. # of records per patient      {:.2}",
            self.avg_records_per_patient
        )?;
        writeln!(
            f,
            "  # of medical features              {}",
            self.num_features
        )?;
        write!(
            f,
            "  missing rate (without imputation)  {:.2}%",
            self.missing_rate * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::CohortConfig;

    #[test]
    fn stats_add_up() {
        let cohort = Cohort::generate(CohortConfig::small(120, 3));
        let s = cohort_stats(&cohort);
        assert_eq!(s.admissions, 120);
        assert_eq!(s.survivors + s.non_survivors, 120);
        assert_eq!(s.los_le7 + s.los_gt7, 120);
        assert_eq!(s.num_features, 37);
        assert!((0.0..1.0).contains(&s.missing_rate));
        assert!(s.avg_records_per_patient > 0.0);
    }

    #[test]
    fn display_contains_table1_rows() {
        let cohort = Cohort::generate(CohortConfig::small(60, 4));
        let text = cohort_stats(&cohort).to_string();
        assert!(text.contains("# of admissions"));
        assert!(text.contains("missing rate"));
        assert!(text.contains("survivor : non-survivor"));
    }
}
