//! Random tensor fills. Every function takes an explicit RNG so the whole
//! workspace stays deterministic under a seed.

use crate::Tensor;
use rand::Rng;

impl Tensor {
    /// Uniform samples in `[lo, hi)`.
    pub fn rand_uniform(dims: &[usize], lo: f32, hi: f32, rng: &mut (impl Rng + ?Sized)) -> Tensor {
        let n = dims.iter().product();
        let data = (0..n).map(|_| rng.gen_range(lo..hi)).collect();
        Tensor::from_vec(data, dims)
    }

    /// Gaussian samples via Box–Muller (keeps us off the `rand_distr`
    /// dependency; two uniforms per pair of normals).
    pub fn rand_normal(
        dims: &[usize],
        mean: f32,
        std: f32,
        rng: &mut (impl Rng + ?Sized),
    ) -> Tensor {
        let n: usize = dims.iter().product();
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            let (z0, z1) = box_muller(rng);
            data.push(mean + std * z0);
            if data.len() < n {
                data.push(mean + std * z1);
            }
        }
        Tensor::from_vec(data, dims)
    }

    /// Bernoulli `{0,1}` mask with success probability `p`.
    pub fn rand_bernoulli(dims: &[usize], p: f32, rng: &mut (impl Rng + ?Sized)) -> Tensor {
        let n = dims.iter().product();
        let data = (0..n)
            .map(|_| if rng.gen::<f32>() < p { 1.0 } else { 0.0 })
            .collect();
        Tensor::from_vec(data, dims)
    }

    /// Glorot/Xavier uniform initialization for a weight of shape
    /// `[fan_in, fan_out, ...]`: `U(-limit, limit)` with
    /// `limit = sqrt(6 / (fan_in + fan_out))`.
    pub fn glorot_uniform(dims: &[usize], rng: &mut (impl Rng + ?Sized)) -> Tensor {
        assert!(
            dims.len() >= 2,
            "glorot needs at least 2 axes, got {dims:?}"
        );
        let fan_in = dims[0] as f32;
        let fan_out = dims[1] as f32;
        let limit = (6.0 / (fan_in + fan_out)).sqrt();
        Self::rand_uniform(dims, -limit, limit, rng)
    }
}

/// One Box–Muller draw: two independent standard normals.
pub fn box_muller(rng: &mut (impl Rng + ?Sized)) -> (f32, f32) {
    // Avoid ln(0) by sampling u1 from (0, 1].
    let u1: f32 = 1.0 - rng.gen::<f32>();
    let u2: f32 = rng.gen();
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = 2.0 * std::f32::consts::PI * u2;
    (r * theta.cos(), r * theta.sin())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = Tensor::rand_uniform(&[1000], -2.0, 3.0, &mut rng);
        assert!(t.data().iter().all(|&v| (-2.0..3.0).contains(&v)));
    }

    #[test]
    fn normal_has_plausible_moments() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = Tensor::rand_normal(&[20000], 1.0, 2.0, &mut rng);
        let mean = t.mean_all();
        let var = t.sub(&Tensor::scalar(mean)).square().mean_all();
        assert!((mean - 1.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn bernoulli_rate_close_to_p() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = Tensor::rand_bernoulli(&[10000], 0.8, &mut rng);
        let rate = t.mean_all();
        assert!((rate - 0.8).abs() < 0.03, "rate {rate}");
        assert!(t.data().iter().all(|&v| v == 0.0 || v == 1.0));
    }

    #[test]
    fn glorot_limit_scales_with_fans() {
        let mut rng = StdRng::seed_from_u64(4);
        let t = Tensor::glorot_uniform(&[100, 200], &mut rng);
        let limit = (6.0f32 / 300.0).sqrt();
        assert!(t.data().iter().all(|&v| v.abs() <= limit));
        assert!(t.max_all() > 0.5 * limit, "should come close to the limit");
    }

    #[test]
    fn seeded_fills_are_reproducible() {
        let a = Tensor::rand_normal(&[16], 0.0, 1.0, &mut StdRng::seed_from_u64(9));
        let b = Tensor::rand_normal(&[16], 0.0, 1.0, &mut StdRng::seed_from_u64(9));
        assert_eq!(a.data(), b.data());
    }
}
