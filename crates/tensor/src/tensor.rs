//! The [`Tensor`] type: owned, contiguous, row-major `f32` storage.

use crate::error::TensorError;
use crate::shape::Shape;

/// An owned, contiguous, row-major N-dimensional array of `f32`.
///
/// Tensors are value types: operations return fresh tensors. This keeps the
/// autodiff tape free of aliasing and makes `Tensor` `Send + Sync` for the
/// shard-parallel trainer.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    /// Builds a tensor from data and a shape.
    ///
    /// # Panics
    /// Panics when `data.len()` does not equal the shape volume.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Self {
        Self::try_from_vec(data, dims).expect("tensor construction")
    }

    /// Fallible version of [`Tensor::from_vec`].
    pub fn try_from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self, TensorError> {
        let shape = Shape::new(dims);
        if shape.volume() != data.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                actual: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// A rank-0 tensor holding one value.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            shape: Shape::new(&[]),
            data: vec![value],
        }
    }

    /// A tensor of zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        Tensor {
            shape: Shape::new(dims),
            data: vec![0.0; Shape::new(dims).volume()],
        }
    }

    /// A tensor of ones.
    pub fn ones(dims: &[usize]) -> Self {
        Self::full(dims, 1.0)
    }

    /// A tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        Tensor {
            shape: Shape::new(dims),
            data: vec![value; Shape::new(dims).volume()],
        }
    }

    /// A square identity matrix of side `n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// `[0, 1, ..., n-1]` as a rank-1 tensor.
    pub fn arange(n: usize) -> Self {
        Tensor {
            shape: Shape::new(&[n]),
            data: (0..n).map(|i| i as f32).collect(),
        }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The shape's extents.
    pub fn shape(&self) -> &[usize] {
        self.shape.dims()
    }

    /// The number of axes.
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True for zero-element tensors (any axis of extent 0).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the backing data, row-major.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing data, row-major.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its backing vector.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element access by multi-index.
    ///
    /// # Panics
    /// Panics in debug builds on out-of-range indices.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Mutable element access by multi-index.
    pub fn at_mut(&mut self, index: &[usize]) -> &mut f32 {
        let off = self.shape.offset(index);
        &mut self.data[off]
    }

    /// The single value of a rank-0 or one-element tensor.
    ///
    /// # Panics
    /// Panics when the tensor holds more than one element.
    pub fn item(&self) -> f32 {
        assert_eq!(
            self.len(),
            1,
            "item() on tensor with {} elements",
            self.len()
        );
        self.data[0]
    }

    /// True when every element is finite (no NaN/∞). Useful in training
    /// divergence assertions.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    // ------------------------------------------------------------------
    // Cheap shape manipulation
    // ------------------------------------------------------------------

    /// Returns the same data under a new shape of identical volume.
    ///
    /// # Panics
    /// Panics when the volumes differ.
    pub fn reshape(&self, dims: &[usize]) -> Tensor {
        let shape = Shape::new(dims);
        assert_eq!(
            shape.volume(),
            self.len(),
            "reshape from {:?} to {:?} changes volume",
            self.shape(),
            dims
        );
        Tensor {
            shape,
            data: self.data.clone(),
        }
    }

    /// In-place variant of [`Tensor::reshape`] that avoids the copy.
    pub fn reshaped(mut self, dims: &[usize]) -> Tensor {
        let shape = Shape::new(dims);
        assert_eq!(shape.volume(), self.len(), "reshape changes volume");
        self.shape = shape;
        self
    }

    /// Adds an axis of extent 1 at `axis`.
    pub fn unsqueeze(&self, axis: usize) -> Tensor {
        let mut dims = self.shape().to_vec();
        assert!(axis <= dims.len(), "unsqueeze axis {axis} out of range");
        dims.insert(axis, 1);
        self.reshape(&dims)
    }

    /// Removes an axis of extent 1 at `axis`.
    ///
    /// # Panics
    /// Panics when the axis extent is not 1.
    pub fn squeeze(&self, axis: usize) -> Tensor {
        let mut dims = self.shape().to_vec();
        assert!(axis < dims.len(), "squeeze axis {axis} out of range");
        assert_eq!(
            dims[axis], 1,
            "squeeze axis {axis} has extent {}",
            dims[axis]
        );
        dims.remove(axis);
        self.reshape(&dims)
    }

    /// Access to the underlying [`Shape`].
    pub fn shape_obj(&self) -> &Shape {
        &self.shape
    }
}

impl std::fmt::Display for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor{:?} ", self.shape())?;
        if self.len() <= 16 {
            write!(f, "{:?}", self.data)
        } else {
            write!(f, "[{:?}, ... {} elements]", &self.data[..8], self.len())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_checks_volume() {
        assert!(Tensor::try_from_vec(vec![1.0, 2.0], &[3]).is_err());
        assert!(Tensor::try_from_vec(vec![1.0, 2.0, 3.0], &[3]).is_ok());
    }

    #[test]
    fn eye_has_unit_diagonal() {
        let t = Tensor::eye(3);
        assert_eq!(t.at(&[0, 0]), 1.0);
        assert_eq!(t.at(&[1, 2]), 0.0);
        assert_eq!(t.data().iter().sum::<f32>(), 3.0);
    }

    #[test]
    fn at_indexes_row_major() {
        let t = Tensor::from_vec(vec![1., 2., 3., 4., 5., 6.], &[2, 3]);
        assert_eq!(t.at(&[1, 0]), 4.0);
        assert_eq!(t.at(&[0, 2]), 3.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::arange(6).reshape(&[2, 3]);
        assert_eq!(t.at(&[1, 2]), 5.0);
    }

    #[test]
    #[should_panic(expected = "changes volume")]
    fn reshape_rejects_volume_change() {
        Tensor::arange(6).reshape(&[4]);
    }

    #[test]
    fn unsqueeze_squeeze_roundtrip() {
        let t = Tensor::arange(6).reshape(&[2, 3]);
        let u = t.unsqueeze(1);
        assert_eq!(u.shape(), &[2, 1, 3]);
        assert_eq!(u.squeeze(1).shape(), &[2, 3]);
    }

    #[test]
    fn item_requires_single_element() {
        assert_eq!(Tensor::scalar(7.0).item(), 7.0);
    }

    #[test]
    fn all_finite_detects_nan() {
        let mut t = Tensor::ones(&[3]);
        assert!(t.all_finite());
        t.data_mut()[1] = f32::NAN;
        assert!(!t.all_finite());
    }
}
