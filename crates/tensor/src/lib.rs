#![warn(missing_docs)]
//! # elda-tensor
//!
//! A compact, dependency-light, row-major `f32` N-dimensional tensor library.
//!
//! This crate is the numerical substrate for the ELDA reproduction: the
//! autodiff engine (`elda-autodiff`), the layer stack (`elda-nn`) and
//! every model in the repository are built on these kernels.
//!
//! Design points:
//!
//! * **Row-major contiguous storage.** A [`Tensor`] owns a `Vec<f32>` and a
//!   shape; views are not exposed — slicing copies. This keeps aliasing out
//!   of the autodiff tape and makes tensors trivially `Send + Sync`.
//! * **NumPy-style broadcasting** for all binary elementwise operations,
//!   with a fast path for identical shapes (see [`broadcast`]).
//! * **Shape errors are programmer errors** and panic with a descriptive
//!   message. Fallible construction from external data goes through
//!   [`Tensor::try_from_vec`].
//! * **Determinism.** All random fills take an explicit `rand::Rng`.
//!
//! ```
//! use elda_tensor::Tensor;
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
//! let b = Tensor::from_vec(vec![10.0, 20.0], &[2]);
//! let c = a.add(&b); // broadcasts the row vector
//! assert_eq!(c.data(), &[11.0, 22.0, 13.0, 24.0]);
//! ```

pub mod broadcast;
pub mod error;
pub mod ops;
pub mod pool;
pub mod rng;
pub mod shape;
pub mod tensor;

pub use error::TensorError;
pub use shape::Shape;
pub use tensor::Tensor;

/// Tolerance-based comparison helpers used across the workspace's tests.
pub mod testutil {
    use crate::Tensor;

    /// True when `|a - b| <= atol + rtol * |b|` element-wise.
    pub fn allclose(a: &Tensor, b: &Tensor, rtol: f32, atol: f32) -> bool {
        if a.shape() != b.shape() {
            return false;
        }
        a.data()
            .iter()
            .zip(b.data())
            .all(|(&x, &y)| (x - y).abs() <= atol + rtol * y.abs())
    }

    /// Panics with a readable diff when the tensors differ beyond tolerance.
    pub fn assert_allclose(a: &Tensor, b: &Tensor, rtol: f32, atol: f32) {
        assert_eq!(
            a.shape(),
            b.shape(),
            "shape mismatch: {:?} vs {:?}",
            a.shape(),
            b.shape()
        );
        for (i, (&x, &y)) in a.data().iter().zip(b.data()).enumerate() {
            assert!(
                (x - y).abs() <= atol + rtol * y.abs(),
                "tensors differ at flat index {i}: {x} vs {y} (rtol={rtol}, atol={atol})"
            );
        }
    }
}
