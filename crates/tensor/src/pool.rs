//! Std-only scoped worker pool behind every parallel kernel.
//!
//! The pool is a process-wide *thread-count policy*, not a set of
//! long-lived threads: each parallel region spawns scoped workers
//! (`std::thread::scope`), so borrows flow in naturally and nothing
//! outlives the call. One global setting — [`set_threads`] — governs every
//! consumer: the cache-blocked kernels in this crate and the shard-parallel
//! gradient trainer in `elda-nn` (the CLI's `--threads` flag writes it).
//!
//! # Determinism contract
//!
//! Every function here distributes *fixed* units of work (chunks of a
//! fixed length, job indices) over however many workers are available.
//! Which worker executes a unit never changes what the unit computes, so
//! **kernel outputs are bit-identical at any thread count** — the property
//! `tests/reproducibility.rs` locks in for whole training runs. Kernels
//! must therefore gate *algorithm* choices (blocked vs naive, block sizes)
//! on tensor sizes only, never on [`threads`].
//!
//! # Nesting
//!
//! Workers record themselves in a thread-local; parallel calls made from
//! inside a worker run serially instead of spawning a second generation of
//! threads. This keeps shard-parallel training (which calls kernels from
//! pool workers) from oversubscribing the machine.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Configured thread count; 0 = auto-detect (the default).
static THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Sets the process-wide worker count. `0` means auto-detect via
/// [`std::thread::available_parallelism`]; `1` disables kernel parallelism
/// entirely. Takes effect for every subsequent parallel region.
pub fn set_threads(n: usize) {
    THREADS.store(n, Ordering::Relaxed);
}

/// The raw configured value (0 = auto-detect).
pub fn configured_threads() -> usize {
    THREADS.load(Ordering::Relaxed)
}

/// Resolves a thread-count setting: `0` becomes the detected hardware
/// parallelism (at least 1), anything else passes through.
pub fn resolve(n: usize) -> usize {
    if n == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        n
    }
}

/// The effective worker count for the next parallel region.
pub fn threads() -> usize {
    resolve(configured_threads())
}

/// True while running on a pool worker thread (parallel calls made here
/// execute serially instead of nesting).
pub fn is_worker() -> bool {
    IN_WORKER.with(|w| w.get())
}

/// Marks the current thread as a pool worker for the guard's lifetime.
struct WorkerGuard {
    prev: bool,
}

impl WorkerGuard {
    fn enter() -> Self {
        let prev = IN_WORKER.with(|w| w.replace(true));
        WorkerGuard { prev }
    }
}

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        IN_WORKER.with(|w| w.set(prev));
    }
}

/// Splits `data` into fixed-length chunks (the last may be short) and runs
/// `f(chunk_index, chunk)` for every chunk, distributing *contiguous runs
/// of chunks* over up to [`threads`] scoped workers.
///
/// Chunk boundaries depend only on `data.len()` and `chunk_len`, never on
/// the worker count, so any `f` whose output depends only on its chunk
/// index produces bit-identical results at every thread setting.
///
/// Runs serially when one worker suffices or when called from inside a
/// pool worker (no nested spawning).
///
/// # Panics
/// Panics when `chunk_len == 0`, or propagates a worker panic.
pub fn run_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "pool chunk_len must be positive");
    let n_chunks = data.len().div_ceil(chunk_len);
    let workers = threads().min(n_chunks);
    if workers <= 1 || is_worker() {
        for (ci, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(ci, chunk);
        }
        return;
    }
    // Segment = a contiguous run of whole chunks, one segment per worker.
    let chunks_per_worker = n_chunks.div_ceil(workers);
    let seg_len = chunks_per_worker * chunk_len;
    std::thread::scope(|scope| {
        let f = &f;
        let mut rest = data;
        let mut first_chunk = 0usize;
        while !rest.is_empty() {
            let take = seg_len.min(rest.len());
            let (seg, tail) = std::mem::take(&mut rest).split_at_mut(take);
            rest = tail;
            let base = first_chunk;
            scope.spawn(move || {
                let _g = WorkerGuard::enter();
                for (j, chunk) in seg.chunks_mut(chunk_len).enumerate() {
                    f(base + j, chunk);
                }
            });
            first_chunk += chunks_per_worker;
        }
    });
}

/// Runs `f(job)` for every job in `0..jobs` and returns the results in job
/// order, distributing contiguous job ranges over up to `max_workers`
/// scoped workers (`0` = auto-detect). Serial when one worker suffices or
/// when called from inside a pool worker.
///
/// # Panics
/// Propagates a worker panic.
pub fn map_jobs_n<T, F>(max_workers: usize, jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = resolve(max_workers).min(jobs);
    if workers <= 1 || is_worker() {
        return (0..jobs).map(f).collect();
    }
    let per_worker = jobs.div_ceil(workers);
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let lo = w * per_worker;
                let hi = ((w + 1) * per_worker).min(jobs);
                scope.spawn(move || {
                    let _g = WorkerGuard::enter();
                    (lo..hi).map(f).collect::<Vec<T>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("pool worker panicked"))
            .collect()
    })
}

/// [`map_jobs_n`] at the process-wide [`threads`] setting.
pub fn map_jobs<T, F>(jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    map_jobs_n(configured_threads(), jobs, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn resolve_zero_is_auto() {
        assert!(resolve(0) >= 1);
        assert_eq!(resolve(3), 3);
    }

    #[test]
    fn chunks_cover_every_element_once() {
        let mut data = vec![0u32; 10_000];
        run_chunks_mut(&mut data, 333, |ci, chunk| {
            for (j, v) in chunk.iter_mut().enumerate() {
                *v = (ci * 333 + j) as u32 + 1;
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i as u32 + 1, "element {i} touched wrongly");
        }
    }

    #[test]
    fn chunk_indices_are_global() {
        let mut data = vec![0usize; 100];
        run_chunks_mut(&mut data, 7, |ci, chunk| {
            for v in chunk.iter_mut() {
                *v = ci;
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i / 7);
        }
    }

    #[test]
    fn empty_data_is_a_noop() {
        let mut data: Vec<f32> = Vec::new();
        run_chunks_mut(&mut data, 8, |_, _| panic!("must not be called"));
    }

    #[test]
    fn map_jobs_preserves_order() {
        let out = map_jobs_n(4, 57, |i| i * i);
        assert_eq!(out.len(), 57);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn map_jobs_zero_jobs() {
        let out: Vec<u8> = map_jobs_n(4, 0, |_| panic!("no jobs"));
        assert!(out.is_empty());
    }

    #[test]
    fn nested_calls_run_serially() {
        let spawned = AtomicU64::new(0);
        let out = map_jobs_n(4, 8, |i| {
            assert!(is_worker() || threads() == 1);
            // A nested parallel call must not spawn another generation.
            let inner = map_jobs_n(4, 3, |j| {
                spawned.fetch_add(1, Ordering::Relaxed);
                j
            });
            assert_eq!(inner, vec![0, 1, 2]);
            i
        });
        assert_eq!(out, (0..8).collect::<Vec<_>>());
        assert_eq!(spawned.load(Ordering::Relaxed), 24);
    }

    #[test]
    fn results_identical_across_worker_counts() {
        let serial = map_jobs_n(1, 100, |i| (i as f32).sin());
        let parallel = map_jobs_n(8, 100, |i| (i as f32).sin());
        assert_eq!(serial, parallel);
    }
}
