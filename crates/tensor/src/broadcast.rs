//! NumPy-style broadcasting resolution and iteration.
//!
//! Two shapes broadcast together by right-aligning them; each axis pair must
//! be equal or contain a 1. Axes of extent 1 (and missing leading axes) are
//! virtually repeated by giving them stride 0.

use crate::error::TensorError;

/// Computes the broadcast result shape of `lhs` and `rhs`.
pub fn broadcast_shapes(lhs: &[usize], rhs: &[usize]) -> Result<Vec<usize>, TensorError> {
    let rank = lhs.len().max(rhs.len());
    let mut out = vec![0usize; rank];
    for (axis, slot) in out.iter_mut().enumerate() {
        let l = aligned_dim(lhs, axis, rank);
        let r = aligned_dim(rhs, axis, rank);
        *slot = if l == r {
            l
        } else if l == 1 {
            r
        } else if r == 1 {
            l
        } else {
            return Err(TensorError::BroadcastMismatch {
                lhs: lhs.to_vec(),
                rhs: rhs.to_vec(),
            });
        };
    }
    Ok(out)
}

/// Returns the extent of `dims` at output axis `out_axis` when right-aligned
/// into a shape of rank `out_rank` (missing leading axes count as 1).
#[inline]
pub fn aligned_dim(dims: &[usize], out_axis: usize, out_rank: usize) -> usize {
    let offset = out_rank - dims.len();
    if out_axis < offset {
        1
    } else {
        dims[out_axis - offset]
    }
}

/// Row-major strides of `dims` right-aligned into rank `out_rank`, with
/// stride 0 on broadcast (extent-1 or missing) axes.
pub fn broadcast_strides(dims: &[usize], out_shape: &[usize]) -> Vec<usize> {
    let out_rank = out_shape.len();
    let offset = out_rank - dims.len();
    // native strides of dims
    let mut native = vec![1usize; dims.len()];
    for i in (0..dims.len().saturating_sub(1)).rev() {
        native[i] = native[i + 1] * dims[i + 1];
    }
    let mut out = vec![0usize; out_rank];
    for i in 0..out_rank {
        if i < offset {
            out[i] = 0;
        } else {
            let d = dims[i - offset];
            out[i] = if d == 1 { 0 } else { native[i - offset] };
        }
    }
    out
}

/// An odometer-style iterator over the flat offsets of two operands under
/// broadcasting, yielding `(lhs_offset, rhs_offset)` in row-major output
/// order. Used by the generic binary kernel; the identical-shape fast path
/// bypasses it.
pub struct BroadcastIter {
    out_shape: Vec<usize>,
    lhs_strides: Vec<usize>,
    rhs_strides: Vec<usize>,
    index: Vec<usize>,
    lhs_off: usize,
    rhs_off: usize,
    remaining: usize,
    started: bool,
}

impl BroadcastIter {
    /// Creates an iterator for operands of shape `lhs` and `rhs`; `out` must
    /// be their broadcast shape (from [`broadcast_shapes`]).
    pub fn new(lhs: &[usize], rhs: &[usize], out: &[usize]) -> Self {
        BroadcastIter {
            lhs_strides: broadcast_strides(lhs, out),
            rhs_strides: broadcast_strides(rhs, out),
            index: vec![0; out.len()],
            out_shape: out.to_vec(),
            lhs_off: 0,
            rhs_off: 0,
            remaining: out.iter().product(),
            started: false,
        }
    }
}

impl Iterator for BroadcastIter {
    type Item = (usize, usize);

    fn next(&mut self) -> Option<(usize, usize)> {
        if self.remaining == 0 {
            return None;
        }
        if !self.started {
            self.started = true;
            self.remaining -= 1;
            return Some((0, 0));
        }
        // advance the odometer from the innermost axis
        for axis in (0..self.out_shape.len()).rev() {
            self.index[axis] += 1;
            self.lhs_off += self.lhs_strides[axis];
            self.rhs_off += self.rhs_strides[axis];
            if self.index[axis] < self.out_shape[axis] {
                self.remaining -= 1;
                return Some((self.lhs_off, self.rhs_off));
            }
            // carry: rewind this axis
            self.lhs_off -= self.lhs_strides[axis] * self.index[axis];
            self.rhs_off -= self.rhs_strides[axis] * self.index[axis];
            self.index[axis] = 0;
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_same_shape() {
        assert_eq!(broadcast_shapes(&[2, 3], &[2, 3]).unwrap(), vec![2, 3]);
    }

    #[test]
    fn broadcast_vector_over_matrix() {
        assert_eq!(broadcast_shapes(&[2, 3], &[3]).unwrap(), vec![2, 3]);
        assert_eq!(broadcast_shapes(&[3], &[2, 3]).unwrap(), vec![2, 3]);
    }

    #[test]
    fn broadcast_ones_expand() {
        assert_eq!(
            broadcast_shapes(&[4, 1, 3], &[1, 5, 3]).unwrap(),
            vec![4, 5, 3]
        );
    }

    #[test]
    fn broadcast_scalar() {
        assert_eq!(broadcast_shapes(&[], &[2, 2]).unwrap(), vec![2, 2]);
    }

    #[test]
    fn incompatible_shapes_error() {
        assert!(broadcast_shapes(&[2, 3], &[4, 3]).is_err());
        assert!(broadcast_shapes(&[2], &[3]).is_err());
    }

    #[test]
    fn strides_zero_on_broadcast_axes() {
        assert_eq!(broadcast_strides(&[3], &[2, 3]), vec![0, 1]);
        assert_eq!(broadcast_strides(&[2, 1, 4], &[2, 3, 4]), vec![4, 0, 1]);
        assert_eq!(broadcast_strides(&[], &[2, 2]), vec![0, 0]);
    }

    #[test]
    fn iter_covers_all_pairs_row_major() {
        // lhs (2,1), rhs (1,3) -> out (2,3)
        let out = broadcast_shapes(&[2, 1], &[1, 3]).unwrap();
        let pairs: Vec<_> = BroadcastIter::new(&[2, 1], &[1, 3], &out).collect();
        assert_eq!(pairs, vec![(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]);
    }

    #[test]
    fn iter_matches_naive_indexing() {
        let lhs = [4, 1, 3];
        let rhs = [2, 3];
        let out = broadcast_shapes(&lhs, &rhs).unwrap();
        let ls = broadcast_strides(&lhs, &out);
        let rs = broadcast_strides(&rhs, &out);
        let mut expected = Vec::new();
        for a in 0..out[0] {
            for b in 0..out[1] {
                for c in 0..out[2] {
                    expected.push((
                        a * ls[0] + b * ls[1] + c * ls[2],
                        a * rs[0] + b * rs[1] + c * rs[2],
                    ));
                }
            }
        }
        let got: Vec<_> = BroadcastIter::new(&lhs, &rhs, &out).collect();
        assert_eq!(got, expected);
    }
}
