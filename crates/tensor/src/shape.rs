//! Shape arithmetic: volumes, strides and index conversion.

use crate::error::TensorError;

/// A tensor shape: the extent of each axis, outermost first (row-major).
///
/// `Shape` is a thin wrapper over `Vec<usize>` adding the index math the
/// kernels need. Rank-0 (scalar) shapes are represented by an empty vector
/// and have volume 1.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape(pub Vec<usize>);

impl Shape {
    /// Creates a shape from a slice of axis extents.
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// The number of axes.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// The extents as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Total number of elements (1 for a scalar shape).
    pub fn volume(&self) -> usize {
        self.0.iter().product()
    }

    /// Row-major strides: the linear-index step of each axis.
    ///
    /// For shape `[a, b, c]` the strides are `[b*c, c, 1]`.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Converts a multi-index to a flat row-major offset.
    ///
    /// # Panics
    /// Panics in debug builds if the index is out of range.
    pub fn offset(&self, index: &[usize]) -> usize {
        debug_assert_eq!(index.len(), self.rank(), "index rank mismatch");
        let mut off = 0;
        let strides = self.strides();
        for (i, (&ix, &st)) in index.iter().zip(&strides).enumerate() {
            debug_assert!(
                ix < self.0[i],
                "index {ix} out of range for axis {i} (extent {})",
                self.0[i]
            );
            off += ix * st;
        }
        off
    }

    /// Validates an axis and returns it, or an [`TensorError::AxisOutOfRange`].
    pub fn check_axis(&self, axis: usize) -> Result<usize, TensorError> {
        if axis < self.rank() {
            Ok(axis)
        } else {
            Err(TensorError::AxisOutOfRange {
                axis,
                rank: self.rank(),
            })
        }
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_of_scalar_shape_is_one() {
        assert_eq!(Shape::new(&[]).volume(), 1);
    }

    #[test]
    fn volume_multiplies_extents() {
        assert_eq!(Shape::new(&[2, 3, 4]).volume(), 24);
    }

    #[test]
    fn strides_are_row_major() {
        assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(&[5]).strides(), vec![1]);
        assert_eq!(Shape::new(&[]).strides(), Vec::<usize>::new());
    }

    #[test]
    fn offset_walks_row_major() {
        let s = Shape::new(&[2, 3]);
        assert_eq!(s.offset(&[0, 0]), 0);
        assert_eq!(s.offset(&[0, 2]), 2);
        assert_eq!(s.offset(&[1, 0]), 3);
        assert_eq!(s.offset(&[1, 2]), 5);
    }

    #[test]
    fn check_axis_bounds() {
        let s = Shape::new(&[2, 3]);
        assert!(s.check_axis(1).is_ok());
        assert!(s.check_axis(2).is_err());
    }
}
