//! Error type for fallible tensor construction and checked operations.

use std::fmt;

/// Errors produced by checked tensor operations.
///
/// Most kernel entry points treat shape mismatches as programmer errors and
/// panic; the checked constructors and the broadcast resolver return this
/// error so callers handling external data (e.g. deserialized checkpoints)
/// can recover.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The element count implied by the shape does not match the data length.
    LengthMismatch {
        /// Number of elements implied by the requested shape.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// Two shapes cannot be broadcast together.
    BroadcastMismatch {
        /// Left-hand-side shape.
        lhs: Vec<usize>,
        /// Right-hand-side shape.
        rhs: Vec<usize>,
    },
    /// An axis index was out of range for the tensor's rank.
    AxisOutOfRange {
        /// The offending axis.
        axis: usize,
        /// The tensor's rank.
        rank: usize,
    },
    /// A shape with a zero-sized dimension was supplied where data is required.
    EmptyShape,
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "data length {actual} does not match shape volume {expected}"
                )
            }
            TensorError::BroadcastMismatch { lhs, rhs } => {
                write!(f, "shapes {lhs:?} and {rhs:?} are not broadcast-compatible")
            }
            TensorError::AxisOutOfRange { axis, rank } => {
                write!(f, "axis {axis} out of range for rank-{rank} tensor")
            }
            TensorError::EmptyShape => write!(f, "shape has a zero-sized dimension"),
        }
    }
}

impl std::error::Error for TensorError {}
