//! Elementwise kernels: broadcasting binary ops, unary maps, scalar ops.
//!
//! Same-shape binary ops, unary maps and the in-place axpy split into
//! fixed-length chunks dispatched on the [`crate::pool`] above
//! [`super::ELEMWISE_PAR_MIN_LEN`] elements. Chunking never changes any
//! per-element computation, so the parallel paths are *exactly* equal to
//! the [`Tensor::zip_with_naive`]/[`Tensor::map_naive`] oracles — the
//! kernel-equivalence tests assert bitwise identity for this family.

use super::{ELEMWISE_PAR_MIN_LEN, PAR_CHUNK_LEN};
use crate::broadcast::{broadcast_shapes, BroadcastIter};
use crate::pool;
use crate::Tensor;

impl Tensor {
    /// Applies `f` to every pair of broadcast elements.
    ///
    /// The workhorse behind [`Tensor::add`]/[`Tensor::mul`]/... A fast path
    /// handles identical shapes without the odometer iterator, splitting
    /// into pool-parallel chunks on large tensors.
    pub fn zip_with(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32 + Sync) -> Tensor {
        if self.shape() == other.shape() {
            if self.len() >= ELEMWISE_PAR_MIN_LEN {
                let (a, b) = (self.data(), other.data());
                let mut data = vec![0.0f32; a.len()];
                pool::run_chunks_mut(&mut data, PAR_CHUNK_LEN, |ci, chunk| {
                    let base = ci * PAR_CHUNK_LEN;
                    for (j, o) in chunk.iter_mut().enumerate() {
                        *o = f(a[base + j], b[base + j]);
                    }
                });
                return Tensor::from_vec(data, self.shape());
            }
            return self.zip_with_naive(other, f);
        }
        let out_shape = broadcast_shapes(self.shape(), other.shape())
            .unwrap_or_else(|e| panic!("elementwise op: {e}"));
        let mut data = Vec::with_capacity(out_shape.iter().product());
        for (lo, ro) in BroadcastIter::new(self.shape(), other.shape(), &out_shape) {
            data.push(f(self.data()[lo], other.data()[ro]));
        }
        Tensor::from_vec(data, &out_shape)
    }

    /// Reference same-shape elementwise combine: a single-threaded pass in
    /// flat order. The oracle for [`Tensor::zip_with`]'s parallel path.
    ///
    /// # Panics
    /// Panics when the shapes differ (no broadcasting here).
    pub fn zip_with_naive(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(
            self.shape(),
            other.shape(),
            "zip_with_naive requires identical shapes: {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
        let data = self
            .data()
            .iter()
            .zip(other.data())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Tensor::from_vec(data, self.shape())
    }

    /// Elementwise addition with broadcasting.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a + b)
    }

    /// Elementwise subtraction with broadcasting.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a - b)
    }

    /// Elementwise multiplication with broadcasting.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a * b)
    }

    /// Elementwise division with broadcasting.
    pub fn div(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a / b)
    }

    /// Elementwise maximum with broadcasting.
    pub fn maximum(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, f32::max)
    }

    /// Elementwise minimum with broadcasting.
    pub fn minimum(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, f32::min)
    }

    /// Applies `f` to every element (pool-parallel on large tensors).
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Tensor {
        if self.len() >= ELEMWISE_PAR_MIN_LEN {
            let src = self.data();
            let mut data = vec![0.0f32; src.len()];
            pool::run_chunks_mut(&mut data, PAR_CHUNK_LEN, |ci, chunk| {
                let base = ci * PAR_CHUNK_LEN;
                for (j, o) in chunk.iter_mut().enumerate() {
                    *o = f(src[base + j]);
                }
            });
            return Tensor::from_vec(data, self.shape());
        }
        self.map_naive(f)
    }

    /// Reference unary map: a single-threaded pass in flat order. The
    /// oracle for [`Tensor::map`]'s parallel path.
    pub fn map_naive(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor::from_vec(self.data().iter().map(|&v| f(v)).collect(), self.shape())
    }

    /// Elementwise negation.
    pub fn neg(&self) -> Tensor {
        self.map(|v| -v)
    }

    /// Elementwise natural exponential.
    pub fn exp(&self) -> Tensor {
        self.map(f32::exp)
    }

    /// Elementwise natural logarithm.
    pub fn ln(&self) -> Tensor {
        self.map(f32::ln)
    }

    /// Elementwise square root.
    pub fn sqrt(&self) -> Tensor {
        self.map(f32::sqrt)
    }

    /// Elementwise absolute value.
    pub fn abs(&self) -> Tensor {
        self.map(f32::abs)
    }

    /// Elementwise square.
    pub fn square(&self) -> Tensor {
        self.map(|v| v * v)
    }

    /// Elementwise logistic sigmoid `1 / (1 + e^-x)`, numerically stable on
    /// both tails.
    pub fn sigmoid(&self) -> Tensor {
        self.map(stable_sigmoid)
    }

    /// Elementwise hyperbolic tangent.
    pub fn tanh(&self) -> Tensor {
        self.map(f32::tanh)
    }

    /// Elementwise rectified linear unit `max(0, x)`.
    pub fn relu(&self) -> Tensor {
        self.map(|v| v.max(0.0))
    }

    /// Adds a scalar to every element.
    pub fn add_scalar(&self, s: f32) -> Tensor {
        self.map(|v| v + s)
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|v| v * s)
    }

    /// Clamps every element into `[lo, hi]`.
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        self.map(|v| v.clamp(lo, hi))
    }

    /// A `{0,1}` mask marking elements strictly greater than `threshold`.
    pub fn gt_mask(&self, threshold: f32) -> Tensor {
        self.map(|v| if v > threshold { 1.0 } else { 0.0 })
    }

    /// Accumulates `other` into `self` in place (`self += alpha * other`);
    /// shapes must match exactly. Used on gradient buffers in hot paths.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn axpy_assign(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "axpy_assign shape mismatch: {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
        if self.len() >= ELEMWISE_PAR_MIN_LEN {
            let src = other.data();
            pool::run_chunks_mut(self.data_mut(), PAR_CHUNK_LEN, |ci, chunk| {
                let base = ci * PAR_CHUNK_LEN;
                for (j, a) in chunk.iter_mut().enumerate() {
                    *a += alpha * src[base + j];
                }
            });
            return;
        }
        for (a, &b) in self.data_mut().iter_mut().zip(other.data()) {
            *a += alpha * b;
        }
    }
}

/// Sigmoid that avoids overflow for large-magnitude inputs.
#[inline]
pub fn stable_sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        let z = (-x).exp();
        1.0 / (1.0 + z)
    } else {
        let z = x.exp();
        z / (1.0 + z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::assert_allclose;

    #[test]
    fn add_same_shape() {
        let a = Tensor::from_vec(vec![1., 2.], &[2]);
        let b = Tensor::from_vec(vec![3., 5.], &[2]);
        assert_eq!(a.add(&b).data(), &[4., 7.]);
    }

    #[test]
    fn add_broadcasts_row_vector() {
        let a = Tensor::from_vec(vec![1., 2., 3., 4.], &[2, 2]);
        let b = Tensor::from_vec(vec![10., 20.], &[2]);
        assert_eq!(a.add(&b).data(), &[11., 22., 13., 24.]);
    }

    #[test]
    fn mul_broadcasts_column_against_row() {
        let col = Tensor::from_vec(vec![1., 2.], &[2, 1]);
        let row = Tensor::from_vec(vec![3., 4., 5.], &[1, 3]);
        let out = col.mul(&row);
        assert_eq!(out.shape(), &[2, 3]);
        assert_eq!(out.data(), &[3., 4., 5., 6., 8., 10.]);
    }

    #[test]
    fn scalar_tensor_broadcasts_everywhere() {
        let a = Tensor::from_vec(vec![1., 2., 3.], &[3]);
        let s = Tensor::scalar(2.0);
        assert_eq!(a.mul(&s).data(), &[2., 4., 6.]);
        assert_eq!(s.sub(&a).data(), &[1., 0., -1.]);
    }

    #[test]
    #[should_panic(expected = "not broadcast-compatible")]
    fn incompatible_shapes_panic() {
        let a = Tensor::zeros(&[2]);
        let b = Tensor::zeros(&[3]);
        a.add(&b);
    }

    #[test]
    fn sigmoid_is_stable_on_extremes() {
        let t = Tensor::from_vec(vec![-1000.0, 0.0, 1000.0], &[3]);
        let s = t.sigmoid();
        assert_eq!(s.data()[0], 0.0);
        assert_eq!(s.data()[1], 0.5);
        assert_eq!(s.data()[2], 1.0);
        assert!(s.all_finite());
    }

    #[test]
    fn relu_zeroes_negatives() {
        let t = Tensor::from_vec(vec![-2., 0., 3.], &[3]);
        assert_eq!(t.relu().data(), &[0., 0., 3.]);
    }

    #[test]
    fn tanh_matches_std() {
        let t = Tensor::from_vec(vec![-1., 0.5], &[2]);
        assert_allclose(
            &t.tanh(),
            &Tensor::from_vec(vec![(-1.0f32).tanh(), 0.5f32.tanh()], &[2]),
            1e-6,
            0.0,
        );
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::from_vec(vec![1., 1.], &[2]);
        let b = Tensor::from_vec(vec![2., 3.], &[2]);
        a.axpy_assign(0.5, &b);
        assert_eq!(a.data(), &[2., 2.5]);
    }

    #[test]
    fn clamp_bounds_values() {
        let t = Tensor::from_vec(vec![-5., 0., 5.], &[3]);
        assert_eq!(t.clamp(-3.0, 3.0).data(), &[-3., 0., 3.]);
    }
}
