//! Tensor kernels, grouped by family.
//!
//! Every kernel is a method on [`crate::Tensor`] returning a fresh tensor.
//! Shape violations panic with descriptive messages (programmer errors);
//! the broadcast resolver itself is fallible and reused by the autodiff
//! layer for shape inference.
//!
//! # Dispatch thresholds
//!
//! Large tensors route to cache-blocked and/or pool-parallel kernel
//! variants; small ones stay on the single-threaded naive paths (`*_naive`
//! methods, which double as the oracles for the kernel-equivalence tests).
//! Every threshold below is a function of tensor *sizes only* — never of
//! the configured thread count — so a given input always takes the same
//! algorithm and produces bit-identical output at any `--threads` setting
//! (parallelism only redistributes fixed work units; see [`crate::pool`]).

pub mod elementwise;
pub mod matmul;
pub mod reduce;
pub mod shape_ops;
pub mod softmax;

/// Minimum `m*k*n` multiply-adds before `matmul` switches from the naive
/// i-k-j kernel to the packed cache-blocked microkernel.
pub const MATMUL_BLOCKED_MIN_FLOPS: usize = 32 * 32 * 32;

/// Minimum total multiply-adds before a matmul fans row blocks (or batch
/// slices) out to the worker pool.
pub const MATMUL_PAR_MIN_FLOPS: usize = 4 * 1024 * 1024;

/// Minimum element count before elementwise kernels (same-shape binary
/// ops, unary maps, in-place axpy) split into pool-parallel chunks.
pub const ELEMWISE_PAR_MIN_LEN: usize = 128 * 1024;

/// Minimum element count before the last-axis softmax family fans rows out
/// to the worker pool.
pub const SOFTMAX_PAR_MIN_LEN: usize = 16 * 1024;

/// Fixed accumulation-block length for full reductions (`sum_all`). Blocks
/// are a function of the length only, so the reduction order — and the
/// result — is identical at any thread count.
pub const REDUCE_BLOCK_LEN: usize = 16 * 1024;

/// Minimum element count before reductions dispatch their fixed blocks /
/// output rows to the worker pool.
pub const REDUCE_PAR_MIN_LEN: usize = 128 * 1024;

/// Chunk length (output elements) for pool-parallel elementwise and
/// per-axis-reduction dispatch.
pub(crate) const PAR_CHUNK_LEN: usize = 8 * 1024;
