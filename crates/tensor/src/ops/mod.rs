//! Tensor kernels, grouped by family.
//!
//! Every kernel is a method on [`crate::Tensor`] returning a fresh tensor.
//! Shape violations panic with descriptive messages (programmer errors);
//! the broadcast resolver itself is fallible and reused by the autodiff
//! layer for shape inference.

pub mod elementwise;
pub mod matmul;
pub mod reduce;
pub mod shape_ops;
pub mod softmax;
