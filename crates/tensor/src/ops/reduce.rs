//! Reduction kernels: full and per-axis sums, means, maxima, and the
//! broadcast-inverse reduction used by autodiff.
//!
//! `sum_all` accumulates fixed [`super::REDUCE_BLOCK_LEN`]-element blocks
//! (in f64) whose partials fold in block order — the block grid depends on
//! the length only, so the result is bit-identical whether the blocks run
//! serially or on the [`crate::pool`]. Per-axis reductions parallelize
//! over independent output elements whose per-element fold order never
//! changes, so they match [`Tensor::sum_axis_naive`] exactly.

use super::{PAR_CHUNK_LEN, REDUCE_BLOCK_LEN, REDUCE_PAR_MIN_LEN};
use crate::pool;
use crate::Tensor;

impl Tensor {
    /// Sum of all elements (blocked f64 accumulation; pool-parallel blocks
    /// on large tensors).
    pub fn sum_all(&self) -> f32 {
        let d = self.data();
        if d.len() < REDUCE_BLOCK_LEN {
            return self.sum_all_naive();
        }
        let blocks = d.len().div_ceil(REDUCE_BLOCK_LEN);
        let block_sum = |i: usize| -> f64 {
            let lo = i * REDUCE_BLOCK_LEN;
            let hi = (lo + REDUCE_BLOCK_LEN).min(d.len());
            d[lo..hi].iter().map(|&v| v as f64).sum::<f64>()
        };
        let partials: Vec<f64> = if d.len() >= REDUCE_PAR_MIN_LEN {
            pool::map_jobs(blocks, block_sum)
        } else {
            (0..blocks).map(block_sum).collect()
        };
        partials.into_iter().sum::<f64>() as f32
    }

    /// Reference full sum: one sequential f64 accumulation over the flat
    /// data. The oracle for [`Tensor::sum_all`]'s blocked path.
    pub fn sum_all_naive(&self) -> f32 {
        // Accumulation in f64 keeps long reductions accurate.
        self.data().iter().map(|&v| v as f64).sum::<f64>() as f32
    }

    /// Mean of all elements.
    ///
    /// # Panics
    /// Panics on empty tensors.
    pub fn mean_all(&self) -> f32 {
        assert!(!self.is_empty(), "mean of empty tensor");
        self.sum_all() / self.len() as f32
    }

    /// Maximum element.
    pub fn max_all(&self) -> f32 {
        self.data()
            .iter()
            .copied()
            .fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element.
    pub fn min_all(&self) -> f32 {
        self.data().iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Sums along `axis`. With `keepdim` the axis stays with extent 1,
    /// otherwise it is removed.
    pub fn sum_axis(&self, axis: usize, keepdim: bool) -> Tensor {
        self.reduce_axis(axis, keepdim, 0.0, |acc, v| acc + v)
    }

    /// Reference per-axis sum: the purely sequential fold. The oracle for
    /// [`Tensor::sum_axis`]'s parallel dispatch (which matches it exactly —
    /// parallelism splits over output elements, never within a fold).
    pub fn sum_axis_naive(&self, axis: usize, keepdim: bool) -> Tensor {
        self.reduce_axis_serial(axis, keepdim, 0.0, &|acc, v| acc + v)
    }

    /// Means along `axis`.
    pub fn mean_axis(&self, axis: usize, keepdim: bool) -> Tensor {
        let n = self.shape()[axis] as f32;
        self.sum_axis(axis, keepdim).scale(1.0 / n)
    }

    /// Maxima along `axis`.
    pub fn max_axis(&self, axis: usize, keepdim: bool) -> Tensor {
        self.reduce_axis(axis, keepdim, f32::NEG_INFINITY, f32::max)
    }

    /// Index of the maximum along the last axis; ties resolve to the first.
    /// Returns a tensor of the same shape minus the last axis, holding
    /// indices as `f32`.
    pub fn argmax_lastdim(&self) -> Tensor {
        let r = self.rank();
        assert!(r >= 1, "argmax on scalar");
        let inner = self.shape()[r - 1];
        let outer = self.len() / inner;
        let mut out = Vec::with_capacity(outer);
        for row in self.data().chunks_exact(inner) {
            let mut best = 0usize;
            for (i, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = i;
                }
            }
            out.push(best as f32);
        }
        Tensor::from_vec(out, &self.shape()[..r - 1])
    }

    /// Generic single-axis fold, with pool-parallel dispatch over output
    /// elements on large tensors. Each output element's fold over the
    /// reduced axis stays sequential, so every path is bitwise equal to
    /// [`Tensor::reduce_axis_serial`].
    fn reduce_axis(
        &self,
        axis: usize,
        keepdim: bool,
        init: f32,
        f: impl Fn(f32, f32) -> f32 + Sync,
    ) -> Tensor {
        let r = self.rank();
        assert!(axis < r, "reduce axis {axis} out of range for rank {r}");
        let dims = self.shape();
        let outer: usize = dims[..axis].iter().product();
        let mid = dims[axis];
        let inner: usize = dims[axis + 1..].iter().product();
        let volume = outer * mid * inner;
        let data = self.data();
        let out_dims = reduced_dims(dims, axis, keepdim);
        if volume < REDUCE_PAR_MIN_LEN || inner == 0 {
            return self.reduce_axis_serial(axis, keepdim, init, &f);
        }
        let mut out = vec![init; outer * inner];
        if outer >= 2 {
            // Chunk whole output rows (`inner` elements each) so a chunk
            // index maps to a fixed run of `o` values.
            let rows_per_chunk = (PAR_CHUNK_LEN / inner).max(1);
            pool::run_chunks_mut(&mut out, rows_per_chunk * inner, |ci, chunk| {
                let o0 = ci * rows_per_chunk;
                for (row_idx, row) in chunk.chunks_mut(inner).enumerate() {
                    let o = o0 + row_idx;
                    for m in 0..mid {
                        let src = &data[(o * mid + m) * inner..(o * mid + m + 1) * inner];
                        for (ov, &sv) in row.iter_mut().zip(src) {
                            *ov = f(*ov, sv);
                        }
                    }
                }
            });
        } else {
            // Single outer row: chunk the inner axis; each output element
            // still folds over `m` in ascending order.
            pool::run_chunks_mut(&mut out, PAR_CHUNK_LEN, |ci, chunk| {
                let base = ci * PAR_CHUNK_LEN;
                for m in 0..mid {
                    let src = &data[m * inner + base..m * inner + base + chunk.len()];
                    for (ov, &sv) in chunk.iter_mut().zip(src) {
                        *ov = f(*ov, sv);
                    }
                }
            });
        }
        Tensor::from_vec(out, &out_dims)
    }

    /// The reference single-threaded axis fold.
    fn reduce_axis_serial(
        &self,
        axis: usize,
        keepdim: bool,
        init: f32,
        f: &dyn Fn(f32, f32) -> f32,
    ) -> Tensor {
        let dims = self.shape();
        let outer: usize = dims[..axis].iter().product();
        let mid = dims[axis];
        let inner: usize = dims[axis + 1..].iter().product();
        let mut out = vec![init; outer * inner];
        for o in 0..outer {
            for m in 0..mid {
                let base = (o * mid + m) * inner;
                let obase = o * inner;
                for i in 0..inner {
                    out[obase + i] = f(out[obase + i], self.data()[base + i]);
                }
            }
        }
        Tensor::from_vec(out, &reduced_dims(dims, axis, keepdim))
    }

    /// Reduces `self` to `target` by summing over every axis in which
    /// `target` was broadcast (extent 1 or missing). This is the adjoint of
    /// broadcasting and is what autodiff uses to push gradients back through
    /// broadcast binary ops.
    ///
    /// # Panics
    /// Panics when `target` is not broadcast-compatible with `self.shape()`.
    pub fn sum_to_shape(&self, target: &[usize]) -> Tensor {
        if self.shape() == target {
            return self.clone();
        }
        let rank = self.rank();
        let offset = rank - target.len();
        let mut t = self.clone();
        // Sum away leading axes missing from target.
        for _ in 0..offset {
            t = t.sum_axis(0, false);
        }
        // Sum (keepdim) axes where the target has extent 1.
        for (axis, &td) in target.iter().enumerate() {
            if td == 1 && t.shape()[axis] != 1 {
                t = t.sum_axis(axis, true);
            } else {
                assert!(
                    td == t.shape()[axis] || td == 1,
                    "sum_to_shape: {:?} does not broadcast to {:?}",
                    target,
                    self.shape()
                );
            }
        }
        t.reshaped(target)
    }
}

/// Output dims after reducing `axis` (kept with extent 1 or removed).
fn reduced_dims(dims: &[usize], axis: usize, keepdim: bool) -> Vec<usize> {
    let mut out_dims: Vec<usize> = dims.to_vec();
    if keepdim {
        out_dims[axis] = 1;
    } else {
        out_dims.remove(axis);
    }
    out_dims
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_all_adds_everything() {
        assert_eq!(Tensor::arange(5).sum_all(), 10.0);
        assert_eq!(Tensor::scalar(3.0).sum_all(), 3.0);
    }

    #[test]
    fn mean_all_divides() {
        assert_eq!(Tensor::arange(4).mean_all(), 1.5);
    }

    #[test]
    fn sum_axis_outer() {
        let t = Tensor::arange(6).reshape(&[2, 3]);
        let s = t.sum_axis(0, false);
        assert_eq!(s.shape(), &[3]);
        assert_eq!(s.data(), &[3., 5., 7.]);
    }

    #[test]
    fn sum_axis_inner_keepdim() {
        let t = Tensor::arange(6).reshape(&[2, 3]);
        let s = t.sum_axis(1, true);
        assert_eq!(s.shape(), &[2, 1]);
        assert_eq!(s.data(), &[3., 12.]);
    }

    #[test]
    fn sum_middle_axis_of_rank3() {
        let t = Tensor::arange(24).reshape(&[2, 3, 4]);
        let s = t.sum_axis(1, false);
        assert_eq!(s.shape(), &[2, 4]);
        // element [0,0] = t[0,0,0]+t[0,1,0]+t[0,2,0] = 0+4+8
        assert_eq!(s.at(&[0, 0]), 12.0);
        assert_eq!(s.at(&[1, 3]), (15 + 19 + 23) as f32);
    }

    #[test]
    fn mean_axis_scales() {
        let t = Tensor::arange(6).reshape(&[2, 3]);
        assert_eq!(t.mean_axis(1, false).data(), &[1., 4.]);
    }

    #[test]
    fn max_axis_takes_maxima() {
        let t = Tensor::from_vec(vec![1., 9., 3., 7., 2., 8.], &[2, 3]);
        assert_eq!(t.max_axis(1, false).data(), &[9., 8.]);
        assert_eq!(t.max_axis(0, false).data(), &[7., 9., 8.]);
    }

    #[test]
    fn argmax_lastdim_breaks_ties_low() {
        let t = Tensor::from_vec(vec![5., 5., 1., 0., 2., 2.], &[2, 3]);
        assert_eq!(t.argmax_lastdim().data(), &[0., 1.]);
    }

    #[test]
    fn sum_to_shape_inverts_row_broadcast() {
        let g = Tensor::ones(&[4, 3]);
        let r = g.sum_to_shape(&[3]);
        assert_eq!(r.shape(), &[3]);
        assert_eq!(r.data(), &[4., 4., 4.]);
    }

    #[test]
    fn sum_to_shape_keepdim_axis() {
        let g = Tensor::arange(6).reshape(&[2, 3]);
        let r = g.sum_to_shape(&[2, 1]);
        assert_eq!(r.shape(), &[2, 1]);
        assert_eq!(r.data(), &[3., 12.]);
    }

    #[test]
    fn sum_to_shape_to_scalar() {
        let g = Tensor::ones(&[2, 2]);
        let r = g.sum_to_shape(&[]);
        assert_eq!(r.shape(), &[] as &[usize]);
        assert_eq!(r.item(), 4.0);
    }

    #[test]
    fn sum_to_same_shape_is_identity() {
        let g = Tensor::arange(4).reshape(&[2, 2]);
        assert_eq!(g.sum_to_shape(&[2, 2]).data(), g.data());
    }
}
