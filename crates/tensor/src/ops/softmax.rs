//! Softmax-family kernels over the last axis.

use crate::Tensor;

impl Tensor {
    /// Softmax along the last axis, computed with the max-subtraction trick
    /// so arbitrarily large logits stay finite.
    pub fn softmax_lastdim(&self) -> Tensor {
        let r = self.rank();
        assert!(r >= 1, "softmax on a scalar");
        let inner = self.shape()[r - 1];
        assert!(inner > 0, "softmax over empty axis");
        let mut out = Vec::with_capacity(self.len());
        for row in self.data().chunks_exact(inner) {
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut denom = 0.0f32;
            let exps: Vec<f32> = row
                .iter()
                .map(|&v| {
                    let e = (v - max).exp();
                    denom += e;
                    e
                })
                .collect();
            out.extend(exps.into_iter().map(|e| e / denom));
        }
        Tensor::from_vec(out, self.shape())
    }

    /// Log-softmax along the last axis (numerically stable).
    pub fn log_softmax_lastdim(&self) -> Tensor {
        let r = self.rank();
        assert!(r >= 1, "log_softmax on a scalar");
        let inner = self.shape()[r - 1];
        let mut out = Vec::with_capacity(self.len());
        for row in self.data().chunks_exact(inner) {
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let lse = max + row.iter().map(|&v| (v - max).exp()).sum::<f32>().ln();
            out.extend(row.iter().map(|&v| v - lse));
        }
        Tensor::from_vec(out, self.shape())
    }

    /// Softmax along the last axis where positions with `mask == 0` receive
    /// zero probability. `mask` must broadcast to `self`'s shape; rows whose
    /// mask is entirely zero produce a uniform row (avoids NaN).
    pub fn masked_softmax_lastdim(&self, mask: &Tensor) -> Tensor {
        const NEG: f32 = -1.0e30;
        let opened = mask.mul(&Tensor::ones(self.shape())); // broadcast mask to full shape
        let masked = self.zip_with(&opened, |v, m| if m > 0.0 { v } else { NEG });
        let mut sm = masked.softmax_lastdim();
        // Rows that were fully masked end up uniform over the masked logits;
        // rewrite them to an explicit uniform distribution for determinism.
        let inner = self.shape()[self.rank() - 1];
        let mask_data = opened.data();
        let sm_data = sm.data_mut();
        for (row_idx, mask_row) in mask_data.chunks_exact(inner).enumerate() {
            if mask_row.iter().all(|&m| m == 0.0) {
                let u = 1.0 / inner as f32;
                for v in &mut sm_data[row_idx * inner..(row_idx + 1) * inner] {
                    *v = u;
                }
            } else {
                // zero out the masked positions explicitly (they are ~0 already)
                for (v, &m) in sm_data[row_idx * inner..(row_idx + 1) * inner]
                    .iter_mut()
                    .zip(mask_row)
                {
                    if m == 0.0 {
                        *v = 0.0;
                    }
                }
            }
        }
        sm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::assert_allclose;

    #[test]
    fn softmax_rows_sum_to_one() {
        let t = Tensor::from_vec(vec![1., 2., 3., -1., 0., 1.], &[2, 3]);
        let s = t.softmax_lastdim();
        for row in s.data().chunks_exact(3) {
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let t = Tensor::from_vec(vec![1., 2., 3.], &[3]);
        let shifted = t.add_scalar(100.0);
        assert_allclose(&t.softmax_lastdim(), &shifted.softmax_lastdim(), 1e-5, 1e-7);
    }

    #[test]
    fn softmax_handles_huge_logits() {
        let t = Tensor::from_vec(vec![1e30f32, 0.0], &[2]);
        let s = t.softmax_lastdim();
        assert!(s.all_finite());
        assert!((s.data()[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn log_softmax_matches_ln_of_softmax() {
        let t = Tensor::from_vec(vec![0.3, -1.2, 2.0, 0.5], &[2, 2]);
        assert_allclose(
            &t.log_softmax_lastdim(),
            &t.softmax_lastdim().ln(),
            1e-5,
            1e-6,
        );
    }

    #[test]
    fn masked_softmax_zeroes_masked_positions() {
        let t = Tensor::from_vec(vec![5., 1., 3.], &[3]);
        let m = Tensor::from_vec(vec![1., 0., 1.], &[3]);
        let s = t.masked_softmax_lastdim(&m);
        assert_eq!(s.data()[1], 0.0);
        assert!((s.data()[0] + s.data()[2] - 1.0).abs() < 1e-6);
        assert!(s.data()[0] > s.data()[2]);
    }

    #[test]
    fn masked_softmax_fully_masked_row_is_uniform() {
        let t = Tensor::from_vec(vec![5., 1.], &[1, 2]);
        let m = Tensor::zeros(&[1, 2]);
        let s = t.masked_softmax_lastdim(&m);
        assert_eq!(s.data(), &[0.5, 0.5]);
    }
}
