//! Softmax-family kernels over the last axis.
//!
//! Rows are independent, so above [`super::SOFTMAX_PAR_MIN_LEN`] elements
//! the row loop fans out to the [`crate::pool`]; each row's computation is
//! byte-for-byte the same as the serial [`Tensor::softmax_lastdim_naive`]
//! oracle, so outputs are bit-identical at any thread count.

use super::SOFTMAX_PAR_MIN_LEN;
use crate::pool;
use crate::Tensor;

/// Rows per parallel work unit, sized so a chunk stays around
/// [`super::PAR_CHUNK_LEN`] elements.
fn rows_per_chunk(inner: usize) -> usize {
    (super::PAR_CHUNK_LEN / inner).max(1)
}

/// One stable softmax row: max-subtraction, exponentiate into `out`,
/// normalize in place.
#[inline]
fn softmax_row(row: &[f32], out: &mut [f32]) {
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut denom = 0.0f32;
    for (o, &v) in out.iter_mut().zip(row) {
        let e = (v - max).exp();
        denom += e;
        *o = e;
    }
    for o in out.iter_mut() {
        *o /= denom;
    }
}

/// One stable log-softmax row.
#[inline]
fn log_softmax_row(row: &[f32], out: &mut [f32]) {
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let lse = max + row.iter().map(|&v| (v - max).exp()).sum::<f32>().ln();
    for (o, &v) in out.iter_mut().zip(row) {
        *o = v - lse;
    }
}

impl Tensor {
    /// Softmax along the last axis, computed with the max-subtraction trick
    /// so arbitrarily large logits stay finite. Row-parallel on large
    /// tensors.
    pub fn softmax_lastdim(&self) -> Tensor {
        let r = self.rank();
        assert!(r >= 1, "softmax on a scalar");
        let inner = self.shape()[r - 1];
        assert!(inner > 0, "softmax over empty axis");
        let mut timer = elda_obs::scope("kernel", "softmax");
        if let Some(t) = timer.as_mut() {
            t.add_units(self.len() as u64);
        }
        if self.len() < SOFTMAX_PAR_MIN_LEN {
            return self.softmax_lastdim_naive();
        }
        let data = self.data();
        let mut out = vec![0.0f32; data.len()];
        let rpc = rows_per_chunk(inner);
        pool::run_chunks_mut(&mut out, rpc * inner, |ci, chunk| {
            let base = ci * rpc * inner;
            for (j, out_row) in chunk.chunks_mut(inner).enumerate() {
                softmax_row(&data[base + j * inner..base + (j + 1) * inner], out_row);
            }
        });
        Tensor::from_vec(out, self.shape())
    }

    /// Reference last-axis softmax: the sequential row loop. The oracle
    /// for [`Tensor::softmax_lastdim`]'s parallel path.
    pub fn softmax_lastdim_naive(&self) -> Tensor {
        let r = self.rank();
        assert!(r >= 1, "softmax on a scalar");
        let inner = self.shape()[r - 1];
        assert!(inner > 0, "softmax over empty axis");
        let mut out = vec![0.0f32; self.len()];
        for (row, out_row) in self
            .data()
            .chunks_exact(inner)
            .zip(out.chunks_mut(inner.max(1)))
        {
            softmax_row(row, out_row);
        }
        Tensor::from_vec(out, self.shape())
    }

    /// Log-softmax along the last axis (numerically stable; row-parallel
    /// on large tensors).
    pub fn log_softmax_lastdim(&self) -> Tensor {
        let r = self.rank();
        assert!(r >= 1, "log_softmax on a scalar");
        let inner = self.shape()[r - 1];
        if inner == 0 || self.len() < SOFTMAX_PAR_MIN_LEN {
            return self.log_softmax_lastdim_naive();
        }
        let data = self.data();
        let mut out = vec![0.0f32; data.len()];
        let rpc = rows_per_chunk(inner);
        pool::run_chunks_mut(&mut out, rpc * inner, |ci, chunk| {
            let base = ci * rpc * inner;
            for (j, out_row) in chunk.chunks_mut(inner).enumerate() {
                log_softmax_row(&data[base + j * inner..base + (j + 1) * inner], out_row);
            }
        });
        Tensor::from_vec(out, self.shape())
    }

    /// Reference last-axis log-softmax (sequential row loop): the oracle
    /// for [`Tensor::log_softmax_lastdim`]'s parallel path.
    pub fn log_softmax_lastdim_naive(&self) -> Tensor {
        let r = self.rank();
        assert!(r >= 1, "log_softmax on a scalar");
        let inner = self.shape()[r - 1];
        let mut out = vec![0.0f32; self.len()];
        for (row, out_row) in self
            .data()
            .chunks_exact(inner.max(1))
            .zip(out.chunks_mut(inner.max(1)))
        {
            log_softmax_row(row, out_row);
        }
        Tensor::from_vec(out, self.shape())
    }

    /// Softmax along the last axis where positions with `mask == 0` receive
    /// zero probability. `mask` must broadcast to `self`'s shape; rows whose
    /// mask is entirely zero produce a uniform row (avoids NaN).
    pub fn masked_softmax_lastdim(&self, mask: &Tensor) -> Tensor {
        const NEG: f32 = -1.0e30;
        let opened = mask.mul(&Tensor::ones(self.shape())); // broadcast mask to full shape
        let masked = self.zip_with(&opened, |v, m| if m > 0.0 { v } else { NEG });
        let mut sm = masked.softmax_lastdim();
        // Rows that were fully masked end up uniform over the masked logits;
        // rewrite them to an explicit uniform distribution for determinism.
        let inner = self.shape()[self.rank() - 1];
        let mask_data = opened.data();
        let sm_data = sm.data_mut();
        for (row_idx, mask_row) in mask_data.chunks_exact(inner).enumerate() {
            if mask_row.iter().all(|&m| m == 0.0) {
                let u = 1.0 / inner as f32;
                for v in &mut sm_data[row_idx * inner..(row_idx + 1) * inner] {
                    *v = u;
                }
            } else {
                // zero out the masked positions explicitly (they are ~0 already)
                for (v, &m) in sm_data[row_idx * inner..(row_idx + 1) * inner]
                    .iter_mut()
                    .zip(mask_row)
                {
                    if m == 0.0 {
                        *v = 0.0;
                    }
                }
            }
        }
        sm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::assert_allclose;

    #[test]
    fn softmax_rows_sum_to_one() {
        let t = Tensor::from_vec(vec![1., 2., 3., -1., 0., 1.], &[2, 3]);
        let s = t.softmax_lastdim();
        for row in s.data().chunks_exact(3) {
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let t = Tensor::from_vec(vec![1., 2., 3.], &[3]);
        let shifted = t.add_scalar(100.0);
        assert_allclose(&t.softmax_lastdim(), &shifted.softmax_lastdim(), 1e-5, 1e-7);
    }

    #[test]
    fn softmax_handles_huge_logits() {
        let t = Tensor::from_vec(vec![1e30f32, 0.0], &[2]);
        let s = t.softmax_lastdim();
        assert!(s.all_finite());
        assert!((s.data()[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn log_softmax_matches_ln_of_softmax() {
        let t = Tensor::from_vec(vec![0.3, -1.2, 2.0, 0.5], &[2, 2]);
        assert_allclose(
            &t.log_softmax_lastdim(),
            &t.softmax_lastdim().ln(),
            1e-5,
            1e-6,
        );
    }

    #[test]
    fn parallel_softmax_is_bitwise_equal_to_naive() {
        // 64 * 512 = 32768 elements: above SOFTMAX_PAR_MIN_LEN.
        let n = 64 * 512;
        let vals: Vec<f32> = (0..n)
            .map(|i| ((i * 2654435761usize) % 997) as f32 / 99.7)
            .collect();
        let t = Tensor::from_vec(vals, &[64, 512]);
        assert!(t.len() >= SOFTMAX_PAR_MIN_LEN);
        assert_eq!(t.softmax_lastdim().data(), t.softmax_lastdim_naive().data());
        assert_eq!(
            t.log_softmax_lastdim().data(),
            t.log_softmax_lastdim_naive().data()
        );
    }

    #[test]
    fn masked_softmax_zeroes_masked_positions() {
        let t = Tensor::from_vec(vec![5., 1., 3.], &[3]);
        let m = Tensor::from_vec(vec![1., 0., 1.], &[3]);
        let s = t.masked_softmax_lastdim(&m);
        assert_eq!(s.data()[1], 0.0);
        assert!((s.data()[0] + s.data()[2] - 1.0).abs() < 1e-6);
        assert!(s.data()[0] > s.data()[2]);
    }

    #[test]
    fn masked_softmax_fully_masked_row_is_uniform() {
        let t = Tensor::from_vec(vec![5., 1.], &[1, 2]);
        let m = Tensor::zeros(&[1, 2]);
        let s = t.masked_softmax_lastdim(&m);
        assert_eq!(s.data(), &[0.5, 0.5]);
    }
}
