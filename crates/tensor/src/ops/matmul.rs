//! Matrix multiplication and axis-permutation kernels.

use crate::Tensor;

impl Tensor {
    /// 2-D matrix product: `(m,k) x (k,n) -> (m,n)`.
    ///
    /// Uses the cache-friendly i-k-j loop order over contiguous rows.
    ///
    /// # Panics
    /// Panics when the operands are not rank-2 or the inner extents differ.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.rank(),
            2,
            "matmul lhs must be rank-2, got {:?}",
            self.shape()
        );
        assert_eq!(
            other.rank(),
            2,
            "matmul rhs must be rank-2, got {:?}",
            other.shape()
        );
        let (m, k) = (self.shape()[0], self.shape()[1]);
        let (k2, n) = (other.shape()[0], other.shape()[1]);
        assert_eq!(
            k,
            k2,
            "matmul inner extents differ: {:?} x {:?}",
            self.shape(),
            other.shape()
        );
        let mut out = vec![0.0f32; m * n];
        matmul_into(self.data(), other.data(), &mut out, m, k, n);
        Tensor::from_vec(out, &[m, n])
    }

    /// Batched matrix product: `(b,m,k) x (b,k,n) -> (b,m,n)`.
    ///
    /// The right-hand side may also be rank-2 `(k,n)`, which is shared by
    /// every batch (the common "apply one weight to a batch of matrices"
    /// case).
    pub fn matmul_batched(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.rank(),
            3,
            "matmul_batched lhs must be rank-3, got {:?}",
            self.shape()
        );
        let (b, m, k) = (self.shape()[0], self.shape()[1], self.shape()[2]);
        match other.rank() {
            3 => {
                let (b2, k2, n) = (other.shape()[0], other.shape()[1], other.shape()[2]);
                assert_eq!(
                    b,
                    b2,
                    "matmul_batched batch extents differ: {:?} x {:?}",
                    self.shape(),
                    other.shape()
                );
                assert_eq!(
                    k,
                    k2,
                    "matmul_batched inner extents differ: {:?} x {:?}",
                    self.shape(),
                    other.shape()
                );
                let mut out = vec![0.0f32; b * m * n];
                for i in 0..b {
                    matmul_into(
                        &self.data()[i * m * k..(i + 1) * m * k],
                        &other.data()[i * k * n..(i + 1) * k * n],
                        &mut out[i * m * n..(i + 1) * m * n],
                        m,
                        k,
                        n,
                    );
                }
                Tensor::from_vec(out, &[b, m, n])
            }
            2 => {
                let (k2, n) = (other.shape()[0], other.shape()[1]);
                assert_eq!(
                    k,
                    k2,
                    "matmul_batched inner extents differ: {:?} x {:?}",
                    self.shape(),
                    other.shape()
                );
                let mut out = vec![0.0f32; b * m * n];
                for i in 0..b {
                    matmul_into(
                        &self.data()[i * m * k..(i + 1) * m * k],
                        other.data(),
                        &mut out[i * m * n..(i + 1) * m * n],
                        m,
                        k,
                        n,
                    );
                }
                Tensor::from_vec(out, &[b, m, n])
            }
            r => panic!("matmul_batched rhs must be rank-2 or rank-3, got rank {r}"),
        }
    }

    /// Transposes a rank-2 tensor.
    pub fn transpose2d(&self) -> Tensor {
        assert_eq!(
            self.rank(),
            2,
            "transpose2d requires rank-2, got {:?}",
            self.shape()
        );
        let (m, n) = (self.shape()[0], self.shape()[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data()[i * n + j];
            }
        }
        Tensor::from_vec(out, &[n, m])
    }

    /// Swaps the last two axes of a rank-≥2 tensor.
    pub fn transpose_last2(&self) -> Tensor {
        let r = self.rank();
        assert!(
            r >= 2,
            "transpose_last2 requires rank >= 2, got {:?}",
            self.shape()
        );
        let mut perm: Vec<usize> = (0..r).collect();
        perm.swap(r - 1, r - 2);
        self.permute(&perm)
    }

    /// Reorders axes by `perm` (a permutation of `0..rank`).
    pub fn permute(&self, perm: &[usize]) -> Tensor {
        let r = self.rank();
        assert_eq!(perm.len(), r, "permute length must equal rank");
        let mut seen = vec![false; r];
        for &p in perm {
            assert!(
                p < r && !seen[p],
                "permute {perm:?} is not a permutation of 0..{r}"
            );
            seen[p] = true;
        }
        let in_dims = self.shape();
        let out_dims: Vec<usize> = perm.iter().map(|&p| in_dims[p]).collect();
        let in_strides = self.shape_obj().strides();
        // stride of output axis a = stride of input axis perm[a]
        let mapped: Vec<usize> = perm.iter().map(|&p| in_strides[p]).collect();
        let volume = self.len();
        let mut out = Vec::with_capacity(volume);
        let mut index = vec![0usize; r];
        let mut offset = 0usize;
        for _ in 0..volume {
            out.push(self.data()[offset]);
            // advance odometer over out_dims
            for axis in (0..r).rev() {
                index[axis] += 1;
                offset += mapped[axis];
                if index[axis] < out_dims[axis] {
                    break;
                }
                offset -= mapped[axis] * index[axis];
                index[axis] = 0;
            }
        }
        Tensor::from_vec(out, &out_dims)
    }

    /// Vector dot product of two rank-1 tensors of equal length.
    pub fn dot(&self, other: &Tensor) -> f32 {
        assert_eq!(
            self.rank(),
            1,
            "dot lhs must be rank-1, got {:?}",
            self.shape()
        );
        assert_eq!(
            self.shape(),
            other.shape(),
            "dot operand shapes differ: {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
        self.data()
            .iter()
            .zip(other.data())
            .map(|(&a, &b)| a * b)
            .sum()
    }
}

/// `out += a(m,k) * b(k,n)` with `out` pre-zeroed; i-k-j order so the inner
/// loop streams both `b`'s row and `out`'s row.
fn matmul_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let out_row = &mut out[i * n..(i + 1) * n];
        for p in 0..k {
            // No zero-skip fast path: skipping `aip == 0.0` would mask
            // NaN/Inf in `b` (0 * NaN must be NaN), letting a diverged
            // weight matrix evade every downstream finiteness check.
            let aip = a[i * k + p];
            let b_row = &b[p * n..(p + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += aip * bv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::assert_allclose;

    #[test]
    fn matmul_identity_is_noop() {
        let a = Tensor::from_vec(vec![1., 2., 3., 4., 5., 6.], &[2, 3]);
        let out = a.matmul(&Tensor::eye(3));
        assert_allclose(&out, &a, 1e-6, 0.0);
    }

    #[test]
    fn matmul_known_product() {
        let a = Tensor::from_vec(vec![1., 2., 3., 4.], &[2, 2]);
        let b = Tensor::from_vec(vec![5., 6., 7., 8.], &[2, 2]);
        assert_eq!(a.matmul(&b).data(), &[19., 22., 43., 50.]);
    }

    #[test]
    fn matmul_rectangular() {
        let a = Tensor::from_vec(vec![1., 0., 2., -1., 3., 1.], &[3, 2]);
        let b = Tensor::from_vec(vec![3., 1., 2., 1.], &[2, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[3, 2]);
        assert_eq!(c.data(), &[3., 1., 4., 1., 11., 4.]);
    }

    #[test]
    #[should_panic(expected = "inner extents differ")]
    fn matmul_rejects_mismatch() {
        Tensor::zeros(&[2, 3]).matmul(&Tensor::zeros(&[2, 3]));
    }

    #[test]
    fn batched_matmul_matches_per_slice() {
        let a = Tensor::arange(12).reshape(&[2, 2, 3]);
        let b = Tensor::arange(18).reshape(&[2, 3, 3]);
        let c = a.matmul_batched(&b);
        assert_eq!(c.shape(), &[2, 2, 3]);
        // slice 0
        let a0 = Tensor::from_vec(a.data()[..6].to_vec(), &[2, 3]);
        let b0 = Tensor::from_vec(b.data()[..9].to_vec(), &[3, 3]);
        assert_eq!(&c.data()[..6], a0.matmul(&b0).data());
    }

    #[test]
    fn batched_matmul_shared_rhs() {
        let a = Tensor::arange(12).reshape(&[2, 2, 3]);
        let w = Tensor::arange(6).reshape(&[3, 2]);
        let c = a.matmul_batched(&w);
        assert_eq!(c.shape(), &[2, 2, 2]);
        let a1 = Tensor::from_vec(a.data()[6..].to_vec(), &[2, 3]);
        assert_eq!(&c.data()[4..], a1.matmul(&w).data());
    }

    #[test]
    fn transpose2d_roundtrip() {
        let a = Tensor::arange(6).reshape(&[2, 3]);
        let t = a.transpose2d();
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.at(&[2, 1]), a.at(&[1, 2]));
        assert_allclose(&t.transpose2d(), &a, 0.0, 0.0);
    }

    #[test]
    fn permute_reorders_axes() {
        let a = Tensor::arange(24).reshape(&[2, 3, 4]);
        let p = a.permute(&[2, 0, 1]);
        assert_eq!(p.shape(), &[4, 2, 3]);
        for i in 0..2 {
            for j in 0..3 {
                for k in 0..4 {
                    assert_eq!(p.at(&[k, i, j]), a.at(&[i, j, k]));
                }
            }
        }
    }

    #[test]
    fn transpose_last2_on_rank3() {
        let a = Tensor::arange(24).reshape(&[2, 3, 4]);
        let t = a.transpose_last2();
        assert_eq!(t.shape(), &[2, 4, 3]);
        assert_eq!(t.at(&[1, 3, 2]), a.at(&[1, 2, 3]));
    }

    #[test]
    fn dot_product() {
        let a = Tensor::from_vec(vec![1., 2., 3.], &[3]);
        let b = Tensor::from_vec(vec![4., 5., 6.], &[3]);
        assert_eq!(a.dot(&b), 32.0);
    }
}
