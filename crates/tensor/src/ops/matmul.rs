//! Matrix multiplication and axis-permutation kernels.
//!
//! `matmul`/`matmul_batched` dispatch between two implementations:
//!
//! * a **naive** i-k-j kernel ([`Tensor::matmul_naive`]) — the reference
//!   oracle for the equivalence tests and the path for tiny products,
//! * a **cache-blocked** kernel for anything with at least
//!   [`super::MATMUL_BLOCKED_MIN_FLOPS`] multiply-adds: B is packed into
//!   contiguous column panels and a register-tiled `MR x NR` microkernel
//!   accumulates over the full inner extent, with row blocks fanned out to
//!   the [`crate::pool`] above [`super::MATMUL_PAR_MIN_FLOPS`].
//!
//! The dispatch is a function of the shapes only — never of the thread
//! count — and every output element accumulates over `k` in the same
//! order, so results are bit-identical at any `--threads` setting and
//! match the naive oracle to f32 rounding (exactly, on targets without
//! fused multiply-add).

use super::{MATMUL_BLOCKED_MIN_FLOPS, MATMUL_PAR_MIN_FLOPS};
use crate::pool;
use crate::Tensor;

/// Microkernel row tile: output rows accumulated together per panel pass.
/// Wider tiles amortize each packed-panel load over more rows; 8x16 f32
/// accumulators still fit the AVX-512 (and, spilled, the AVX2) register
/// budget.
const MR: usize = 8;
/// Microkernel column tile / packed-panel width (f32 lanes).
const NR: usize = 16;
/// Rows per parallel work unit; a multiple of `MR` so the register-tile
/// grid is identical however rows are distributed over workers.
const ROW_BLOCK: usize = 64;

impl Tensor {
    /// 2-D matrix product: `(m,k) x (k,n) -> (m,n)`.
    ///
    /// Large products use the packed cache-blocked kernel (see the module
    /// docs); small ones fall through to [`Tensor::matmul_naive`].
    ///
    /// # Panics
    /// Panics when the operands are not rank-2 or the inner extents differ.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let (m, k, n) = check_matmul_shapes(self, other);
        let mut timer = elda_obs::scope("kernel", "matmul");
        if let Some(t) = timer.as_mut() {
            t.add_units(2 * (m * k * n) as u64);
        }
        let mut out = vec![0.0f32; m * n];
        if m * k * n >= MATMUL_BLOCKED_MIN_FLOPS {
            matmul_blocked_into(self.data(), other.data(), &mut out, m, k, n);
        } else {
            matmul_into(self.data(), other.data(), &mut out, m, k, n);
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// Reference 2-D matrix product: single-threaded i-k-j loop over
    /// contiguous rows. This is the oracle the optimized [`Tensor::matmul`]
    /// is tested against, and the path taken for tiny products.
    ///
    /// # Panics
    /// Panics when the operands are not rank-2 or the inner extents differ.
    pub fn matmul_naive(&self, other: &Tensor) -> Tensor {
        let (m, k, n) = check_matmul_shapes(self, other);
        let mut out = vec![0.0f32; m * n];
        matmul_into(self.data(), other.data(), &mut out, m, k, n);
        Tensor::from_vec(out, &[m, n])
    }

    /// Batched matrix product: `(b,m,k) x (b,k,n) -> (b,m,n)`.
    ///
    /// The right-hand side may also be rank-2 `(k,n)`, which is shared by
    /// every batch (the common "apply one weight to a batch of matrices"
    /// case). Batch slices are independent, so large products fan the
    /// slices out to the [`crate::pool`]; each slice uses the same
    /// blocked-vs-naive dispatch as [`Tensor::matmul`].
    pub fn matmul_batched(&self, other: &Tensor) -> Tensor {
        let (b, m, k, n, shared_rhs) = check_matmul_batched_shapes(self, other);
        let mut timer = elda_obs::scope("kernel", "matmul_batched");
        if let Some(t) = timer.as_mut() {
            t.add_units(2 * (b * m * k * n) as u64);
        }
        let slice_flops = m * k * n;
        let blocked = slice_flops >= MATMUL_BLOCKED_MIN_FLOPS;
        let mut out = vec![0.0f32; b * m * n];
        // Pack the shared rank-2 rhs once, outside the per-slice loop.
        let shared_panels = (shared_rhs && blocked).then(|| pack_b(other.data(), k, n));
        let slice_kernel = |i: usize, out_slice: &mut [f32]| {
            let a = &self.data()[i * m * k..(i + 1) * m * k];
            let rhs = if shared_rhs {
                other.data()
            } else {
                &other.data()[i * k * n..(i + 1) * k * n]
            };
            if let Some(bp) = &shared_panels {
                matmul_rows(a, bp, out_slice, 0, m, k, n);
            } else if blocked {
                matmul_blocked_serial(a, rhs, out_slice, m, k, n);
            } else {
                matmul_into(a, rhs, out_slice, m, k, n);
            }
        };
        if m * n > 0 && b * slice_flops >= MATMUL_PAR_MIN_FLOPS {
            pool::run_chunks_mut(&mut out, m * n, |i, out_slice| slice_kernel(i, out_slice));
        } else {
            for (i, out_slice) in out.chunks_mut((m * n).max(1)).enumerate() {
                slice_kernel(i, out_slice);
            }
        }
        Tensor::from_vec(out, &[b, m, n])
    }

    /// Reference batched matrix product: per-slice [`Tensor::matmul_naive`]
    /// loops, single-threaded. The oracle for [`Tensor::matmul_batched`].
    pub fn matmul_batched_naive(&self, other: &Tensor) -> Tensor {
        let (b, m, k, n, shared_rhs) = check_matmul_batched_shapes(self, other);
        let mut out = vec![0.0f32; b * m * n];
        for i in 0..b {
            let rhs = if shared_rhs {
                other.data()
            } else {
                &other.data()[i * k * n..(i + 1) * k * n]
            };
            matmul_into(
                &self.data()[i * m * k..(i + 1) * m * k],
                rhs,
                &mut out[i * m * n..(i + 1) * m * n],
                m,
                k,
                n,
            );
        }
        Tensor::from_vec(out, &[b, m, n])
    }

    /// Transposes a rank-2 tensor.
    pub fn transpose2d(&self) -> Tensor {
        assert_eq!(
            self.rank(),
            2,
            "transpose2d requires rank-2, got {:?}",
            self.shape()
        );
        let (m, n) = (self.shape()[0], self.shape()[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data()[i * n + j];
            }
        }
        Tensor::from_vec(out, &[n, m])
    }

    /// Swaps the last two axes of a rank-≥2 tensor.
    pub fn transpose_last2(&self) -> Tensor {
        let r = self.rank();
        assert!(
            r >= 2,
            "transpose_last2 requires rank >= 2, got {:?}",
            self.shape()
        );
        let mut perm: Vec<usize> = (0..r).collect();
        perm.swap(r - 1, r - 2);
        self.permute(&perm)
    }

    /// Reorders axes by `perm` (a permutation of `0..rank`).
    pub fn permute(&self, perm: &[usize]) -> Tensor {
        let r = self.rank();
        assert_eq!(perm.len(), r, "permute length must equal rank");
        let mut seen = vec![false; r];
        for &p in perm {
            assert!(
                p < r && !seen[p],
                "permute {perm:?} is not a permutation of 0..{r}"
            );
            seen[p] = true;
        }
        let in_dims = self.shape();
        let out_dims: Vec<usize> = perm.iter().map(|&p| in_dims[p]).collect();
        let in_strides = self.shape_obj().strides();
        // stride of output axis a = stride of input axis perm[a]
        let mapped: Vec<usize> = perm.iter().map(|&p| in_strides[p]).collect();
        let volume = self.len();
        let mut out = Vec::with_capacity(volume);
        let mut index = vec![0usize; r];
        let mut offset = 0usize;
        for _ in 0..volume {
            out.push(self.data()[offset]);
            // advance odometer over out_dims
            for axis in (0..r).rev() {
                index[axis] += 1;
                offset += mapped[axis];
                if index[axis] < out_dims[axis] {
                    break;
                }
                offset -= mapped[axis] * index[axis];
                index[axis] = 0;
            }
        }
        Tensor::from_vec(out, &out_dims)
    }

    /// Vector dot product of two rank-1 tensors of equal length.
    pub fn dot(&self, other: &Tensor) -> f32 {
        assert_eq!(
            self.rank(),
            1,
            "dot lhs must be rank-1, got {:?}",
            self.shape()
        );
        assert_eq!(
            self.shape(),
            other.shape(),
            "dot operand shapes differ: {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
        self.data()
            .iter()
            .zip(other.data())
            .map(|(&a, &b)| a * b)
            .sum()
    }
}

fn check_matmul_shapes(lhs: &Tensor, rhs: &Tensor) -> (usize, usize, usize) {
    assert_eq!(
        lhs.rank(),
        2,
        "matmul lhs must be rank-2, got {:?}",
        lhs.shape()
    );
    assert_eq!(
        rhs.rank(),
        2,
        "matmul rhs must be rank-2, got {:?}",
        rhs.shape()
    );
    let (m, k) = (lhs.shape()[0], lhs.shape()[1]);
    let (k2, n) = (rhs.shape()[0], rhs.shape()[1]);
    assert_eq!(
        k,
        k2,
        "matmul inner extents differ: {:?} x {:?}",
        lhs.shape(),
        rhs.shape()
    );
    (m, k, n)
}

/// Returns `(b, m, k, n, shared_rhs)` for a batched product.
fn check_matmul_batched_shapes(lhs: &Tensor, rhs: &Tensor) -> (usize, usize, usize, usize, bool) {
    assert_eq!(
        lhs.rank(),
        3,
        "matmul_batched lhs must be rank-3, got {:?}",
        lhs.shape()
    );
    let (b, m, k) = (lhs.shape()[0], lhs.shape()[1], lhs.shape()[2]);
    match rhs.rank() {
        3 => {
            let (b2, k2, n) = (rhs.shape()[0], rhs.shape()[1], rhs.shape()[2]);
            assert_eq!(
                b,
                b2,
                "matmul_batched batch extents differ: {:?} x {:?}",
                lhs.shape(),
                rhs.shape()
            );
            assert_eq!(
                k,
                k2,
                "matmul_batched inner extents differ: {:?} x {:?}",
                lhs.shape(),
                rhs.shape()
            );
            (b, m, k, n, false)
        }
        2 => {
            let (k2, n) = (rhs.shape()[0], rhs.shape()[1]);
            assert_eq!(
                k,
                k2,
                "matmul_batched inner extents differ: {:?} x {:?}",
                lhs.shape(),
                rhs.shape()
            );
            (b, m, k, n, true)
        }
        r => panic!("matmul_batched rhs must be rank-2 or rank-3, got rank {r}"),
    }
}

/// `out += a(m,k) * b(k,n)` with `out` pre-zeroed; i-k-j order so the inner
/// loop streams both `b`'s row and `out`'s row.
fn matmul_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let out_row = &mut out[i * n..(i + 1) * n];
        for p in 0..k {
            // No zero-skip fast path: skipping `aip == 0.0` would mask
            // NaN/Inf in `b` (0 * NaN must be NaN), letting a diverged
            // weight matrix evade every downstream finiteness check.
            let aip = a[i * k + p];
            let b_row = &b[p * n..(p + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += aip * bv;
            }
        }
    }
}

/// Fused multiply-add when the build target has hardware FMA; otherwise a
/// plain multiply-add (`mul_add` without hardware support lowers to a libm
/// call and is orders of magnitude slower than the naive kernel).
#[inline(always)]
fn fmadd(a: f32, b: f32, c: f32) -> f32 {
    if cfg!(target_feature = "fma") {
        a.mul_add(b, c)
    } else {
        a * b + c
    }
}

/// Packs `b (k x n)` into column panels of width `NR`: panel `jp` is a
/// contiguous `k x NR` block with `bp[p*NR + c] = b[p*n + jp*NR + c]`,
/// zero-padded in the tail panel so the microkernel never branches on
/// width.
fn pack_b(b: &[f32], k: usize, n: usize) -> Vec<f32> {
    let panels = n.div_ceil(NR);
    let mut bp = vec![0.0f32; panels * k * NR];
    for jp in 0..panels {
        let j0 = jp * NR;
        let w = NR.min(n - j0);
        let dst = &mut bp[jp * k * NR..(jp + 1) * k * NR];
        for p in 0..k {
            dst[p * NR..p * NR + w].copy_from_slice(&b[p * n + j0..p * n + j0 + w]);
        }
    }
    bp
}

/// `MR x NR` register-tiled inner loop: accumulates `MR` full rows of one
/// packed panel over the whole inner extent. The accumulation over `p` is
/// sequential per output element — the same order as the naive kernel.
#[inline(always)]
fn microkernel(a: &[f32], panel: &[f32], k: usize, a_stride: usize) -> [[f32; NR]; MR] {
    let mut acc = [[0.0f32; NR]; MR];
    for p in 0..k {
        let brow = &panel[p * NR..(p + 1) * NR];
        for (r, accr) in acc.iter_mut().enumerate() {
            let av = a[r * a_stride + p];
            for (o, &bv) in accr.iter_mut().zip(brow) {
                *o = fmadd(av, bv, *o);
            }
        }
    }
    acc
}

/// Computes output rows `i0..i0 + rows` against pre-packed panels `bp`,
/// writing into `out_rows` (the rows' slice of the output). `i0` must be a
/// multiple of `MR` so the register-tile grid matches the serial kernel.
fn matmul_rows(
    a: &[f32],
    bp: &[f32],
    out_rows: &mut [f32],
    i0: usize,
    rows: usize,
    k: usize,
    n: usize,
) {
    debug_assert_eq!(i0 % MR, 0, "row block start must align to the tile grid");
    let panels = n.div_ceil(NR);
    let mut r0 = 0;
    while r0 < rows {
        let mr = MR.min(rows - r0);
        let a_rows = &a[(i0 + r0) * k..];
        for jp in 0..panels {
            let j0 = jp * NR;
            let w = NR.min(n - j0);
            let panel = &bp[jp * k * NR..(jp + 1) * k * NR];
            if mr == MR {
                let acc = microkernel(a_rows, panel, k, k);
                for (r, accr) in acc.iter().enumerate() {
                    out_rows[(r0 + r) * n + j0..(r0 + r) * n + j0 + w].copy_from_slice(&accr[..w]);
                }
            } else {
                // Remainder rows (m % MR): plain dots in the same k order.
                for r in 0..mr {
                    let arow = &a_rows[r * k..(r + 1) * k];
                    for c in 0..w {
                        let mut s = 0.0f32;
                        for (p, &av) in arow.iter().enumerate() {
                            s = fmadd(av, panel[p * NR + c], s);
                        }
                        out_rows[(r0 + r) * n + j0 + c] = s;
                    }
                }
            }
        }
        r0 += mr;
    }
}

/// Cache-blocked product with row blocks distributed over the pool. The
/// tile grid and accumulation order are functions of the shapes only, so
/// the output is bit-identical at any thread count.
fn matmul_blocked_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    let bp = pack_b(b, k, n);
    if m * k * n >= MATMUL_PAR_MIN_FLOPS {
        pool::run_chunks_mut(out, ROW_BLOCK * n, |blk, out_rows| {
            matmul_rows(a, &bp, out_rows, blk * ROW_BLOCK, out_rows.len() / n, k, n);
        });
    } else {
        matmul_rows(a, &bp, out, 0, m, k, n);
    }
}

/// Single-threaded blocked product (packs its own rhs); used per batch
/// slice where the batch dimension already provides the parallelism.
fn matmul_blocked_serial(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    let bp = pack_b(b, k, n);
    matmul_rows(a, &bp, out, 0, m, k, n);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::assert_allclose;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matmul_identity_is_noop() {
        let a = Tensor::from_vec(vec![1., 2., 3., 4., 5., 6.], &[2, 3]);
        let out = a.matmul(&Tensor::eye(3));
        assert_allclose(&out, &a, 1e-6, 0.0);
    }

    #[test]
    fn matmul_known_product() {
        let a = Tensor::from_vec(vec![1., 2., 3., 4.], &[2, 2]);
        let b = Tensor::from_vec(vec![5., 6., 7., 8.], &[2, 2]);
        assert_eq!(a.matmul(&b).data(), &[19., 22., 43., 50.]);
    }

    #[test]
    fn matmul_rectangular() {
        let a = Tensor::from_vec(vec![1., 0., 2., -1., 3., 1.], &[3, 2]);
        let b = Tensor::from_vec(vec![3., 1., 2., 1.], &[2, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[3, 2]);
        assert_eq!(c.data(), &[3., 1., 4., 1., 11., 4.]);
    }

    #[test]
    #[should_panic(expected = "inner extents differ")]
    fn matmul_rejects_mismatch() {
        Tensor::zeros(&[2, 3]).matmul(&Tensor::zeros(&[2, 3]));
    }

    #[test]
    fn batched_matmul_matches_per_slice() {
        let a = Tensor::arange(12).reshape(&[2, 2, 3]);
        let b = Tensor::arange(18).reshape(&[2, 3, 3]);
        let c = a.matmul_batched(&b);
        assert_eq!(c.shape(), &[2, 2, 3]);
        // slice 0
        let a0 = Tensor::from_vec(a.data()[..6].to_vec(), &[2, 3]);
        let b0 = Tensor::from_vec(b.data()[..9].to_vec(), &[3, 3]);
        assert_eq!(&c.data()[..6], a0.matmul(&b0).data());
    }

    #[test]
    fn batched_matmul_shared_rhs() {
        let a = Tensor::arange(12).reshape(&[2, 2, 3]);
        let w = Tensor::arange(6).reshape(&[3, 2]);
        let c = a.matmul_batched(&w);
        assert_eq!(c.shape(), &[2, 2, 2]);
        let a1 = Tensor::from_vec(a.data()[6..].to_vec(), &[2, 3]);
        assert_eq!(&c.data()[4..], a1.matmul(&w).data());
    }

    #[test]
    fn blocked_matmul_matches_naive_above_threshold() {
        // 48*48*48 = 110592 flops: above MATMUL_BLOCKED_MIN_FLOPS, below the
        // parallel threshold — exercises the packed microkernel itself.
        let mut rng = StdRng::seed_from_u64(42);
        let a = Tensor::rand_uniform(&[48, 48], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform(&[48, 48], -1.0, 1.0, &mut rng);
        const _: () = assert!(48 * 48 * 48 >= MATMUL_BLOCKED_MIN_FLOPS);
        assert_allclose(&a.matmul(&b), &a.matmul_naive(&b), 1e-5, 1e-5);
    }

    #[test]
    fn blocked_matmul_handles_ragged_tiles() {
        // m, n deliberately not multiples of MR/NR; k odd.
        let mut rng = StdRng::seed_from_u64(7);
        let a = Tensor::rand_uniform(&[37, 53], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform(&[53, 41], -1.0, 1.0, &mut rng);
        const _: () = assert!(37 * 53 * 41 >= MATMUL_BLOCKED_MIN_FLOPS);
        assert_allclose(&a.matmul(&b), &a.matmul_naive(&b), 1e-5, 1e-5);
    }

    #[test]
    fn transpose2d_roundtrip() {
        let a = Tensor::arange(6).reshape(&[2, 3]);
        let t = a.transpose2d();
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.at(&[2, 1]), a.at(&[1, 2]));
        assert_allclose(&t.transpose2d(), &a, 0.0, 0.0);
    }

    #[test]
    fn permute_reorders_axes() {
        let a = Tensor::arange(24).reshape(&[2, 3, 4]);
        let p = a.permute(&[2, 0, 1]);
        assert_eq!(p.shape(), &[4, 2, 3]);
        for i in 0..2 {
            for j in 0..3 {
                for k in 0..4 {
                    assert_eq!(p.at(&[k, i, j]), a.at(&[i, j, k]));
                }
            }
        }
    }

    #[test]
    fn transpose_last2_on_rank3() {
        let a = Tensor::arange(24).reshape(&[2, 3, 4]);
        let t = a.transpose_last2();
        assert_eq!(t.shape(), &[2, 4, 3]);
        assert_eq!(t.at(&[1, 3, 2]), a.at(&[1, 2, 3]));
    }

    #[test]
    fn dot_product() {
        let a = Tensor::from_vec(vec![1., 2., 3.], &[3]);
        let b = Tensor::from_vec(vec![4., 5., 6.], &[3]);
        assert_eq!(a.dot(&b), 32.0);
    }
}
