//! Structural kernels: slicing, selection, concatenation and stacking.
//!
//! All of these copy — views are deliberately not part of the API (see the
//! crate docs).

use crate::Tensor;

impl Tensor {
    /// Copies the half-open range `[start, end)` along `axis`.
    ///
    /// # Panics
    /// Panics on out-of-range axis or bounds.
    pub fn slice_axis(&self, axis: usize, start: usize, end: usize) -> Tensor {
        let dims = self.shape();
        assert!(axis < dims.len(), "slice axis {axis} out of range");
        assert!(
            start <= end && end <= dims[axis],
            "slice bounds {start}..{end} invalid for axis extent {}",
            dims[axis]
        );
        let outer: usize = dims[..axis].iter().product();
        let mid = dims[axis];
        let inner: usize = dims[axis + 1..].iter().product();
        let span = end - start;
        let mut out = Vec::with_capacity(outer * span * inner);
        for o in 0..outer {
            let base = (o * mid + start) * inner;
            out.extend_from_slice(&self.data()[base..base + span * inner]);
        }
        let mut out_dims = dims.to_vec();
        out_dims[axis] = span;
        Tensor::from_vec(out, &out_dims)
    }

    /// Selects index `idx` along `axis`, removing that axis.
    pub fn select(&self, axis: usize, idx: usize) -> Tensor {
        let s = self.slice_axis(axis, idx, idx + 1);
        s.squeeze(axis)
    }

    /// Concatenates tensors along `axis`. All other axes must agree.
    ///
    /// # Panics
    /// Panics on an empty input list or mismatched shapes.
    pub fn concat(parts: &[&Tensor], axis: usize) -> Tensor {
        assert!(!parts.is_empty(), "concat of zero tensors");
        let first = parts[0].shape();
        assert!(axis < first.len(), "concat axis {axis} out of range");
        for p in parts {
            assert_eq!(p.rank(), first.len(), "concat rank mismatch");
            for (a, (&d, &e)) in p.shape().iter().zip(first).enumerate() {
                assert!(
                    a == axis || d == e,
                    "concat: non-concat axis {a} differs ({d} vs {e})"
                );
            }
        }
        let outer: usize = first[..axis].iter().product();
        let inner: usize = first[axis + 1..].iter().product();
        let total_mid: usize = parts.iter().map(|p| p.shape()[axis]).sum();
        let mut out = Vec::with_capacity(outer * total_mid * inner);
        for o in 0..outer {
            for p in parts {
                let mid = p.shape()[axis];
                let base = o * mid * inner;
                out.extend_from_slice(&p.data()[base..base + mid * inner]);
            }
        }
        let mut out_dims = first.to_vec();
        out_dims[axis] = total_mid;
        Tensor::from_vec(out, &out_dims)
    }

    /// Stacks equal-shaped tensors along a new leading axis at `axis`.
    pub fn stack(parts: &[&Tensor], axis: usize) -> Tensor {
        assert!(!parts.is_empty(), "stack of zero tensors");
        let unsqueezed: Vec<Tensor> = parts.iter().map(|p| p.unsqueeze(axis)).collect();
        let refs: Vec<&Tensor> = unsqueezed.iter().collect();
        Tensor::concat(&refs, axis)
    }

    /// Splits into `n` equal parts along `axis`.
    ///
    /// # Panics
    /// Panics when the axis extent is not divisible by `n`.
    pub fn split_equal(&self, axis: usize, n: usize) -> Vec<Tensor> {
        let extent = self.shape()[axis];
        assert_eq!(
            extent % n,
            0,
            "axis extent {extent} not divisible into {n} parts"
        );
        let step = extent / n;
        (0..n)
            .map(|i| self.slice_axis(axis, i * step, (i + 1) * step))
            .collect()
    }

    /// Repeats the tensor `reps` times along `axis` (tile).
    pub fn repeat_axis(&self, axis: usize, reps: usize) -> Tensor {
        let copies: Vec<&Tensor> = std::iter::repeat_n(self, reps).collect();
        Tensor::concat(&copies, axis)
    }

    /// Writes `src` into the half-open range `[start, start+src_extent)`
    /// along `axis`, in place. The structural adjoint of [`Tensor::slice_axis`].
    pub fn assign_slice_axis(&mut self, axis: usize, start: usize, src: &Tensor) {
        let dims = self.shape().to_vec();
        assert!(axis < dims.len(), "assign axis out of range");
        assert_eq!(src.rank(), dims.len(), "assign rank mismatch");
        let span = src.shape()[axis];
        assert!(start + span <= dims[axis], "assign slice out of bounds");
        for (a, (&d, &e)) in src.shape().iter().zip(&dims).enumerate() {
            assert!(
                a == axis || d == e,
                "assign: non-slice axis {a} differs ({d} vs {e})"
            );
        }
        let outer: usize = dims[..axis].iter().product();
        let mid = dims[axis];
        let inner: usize = dims[axis + 1..].iter().product();
        for o in 0..outer {
            let dst_base = (o * mid + start) * inner;
            let src_base = o * span * inner;
            self.data_mut()[dst_base..dst_base + span * inner]
                .copy_from_slice(&src.data()[src_base..src_base + span * inner]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_outer_axis() {
        let t = Tensor::arange(6).reshape(&[3, 2]);
        let s = t.slice_axis(0, 1, 3);
        assert_eq!(s.shape(), &[2, 2]);
        assert_eq!(s.data(), &[2., 3., 4., 5.]);
    }

    #[test]
    fn slice_inner_axis() {
        let t = Tensor::arange(6).reshape(&[2, 3]);
        let s = t.slice_axis(1, 0, 2);
        assert_eq!(s.shape(), &[2, 2]);
        assert_eq!(s.data(), &[0., 1., 3., 4.]);
    }

    #[test]
    fn select_removes_axis() {
        let t = Tensor::arange(24).reshape(&[2, 3, 4]);
        let s = t.select(1, 2);
        assert_eq!(s.shape(), &[2, 4]);
        assert_eq!(s.at(&[1, 0]), t.at(&[1, 2, 0]));
    }

    #[test]
    fn concat_axis0() {
        let a = Tensor::arange(4).reshape(&[2, 2]);
        let b = Tensor::from_vec(vec![9., 9.], &[1, 2]);
        let c = Tensor::concat(&[&a, &b], 0);
        assert_eq!(c.shape(), &[3, 2]);
        assert_eq!(c.data(), &[0., 1., 2., 3., 9., 9.]);
    }

    #[test]
    fn concat_inner_axis_interleaves() {
        let a = Tensor::from_vec(vec![1., 2.], &[2, 1]);
        let b = Tensor::from_vec(vec![3., 4.], &[2, 1]);
        let c = Tensor::concat(&[&a, &b], 1);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[1., 3., 2., 4.]);
    }

    #[test]
    #[should_panic(expected = "non-concat axis")]
    fn concat_rejects_mismatched() {
        let a = Tensor::zeros(&[2, 2]);
        let b = Tensor::zeros(&[2, 3]);
        Tensor::concat(&[&a, &b], 0);
    }

    #[test]
    fn stack_adds_axis() {
        let a = Tensor::arange(2);
        let b = Tensor::from_vec(vec![5., 6.], &[2]);
        let s = Tensor::stack(&[&a, &b], 0);
        assert_eq!(s.shape(), &[2, 2]);
        assert_eq!(s.data(), &[0., 1., 5., 6.]);
        let s1 = Tensor::stack(&[&a, &b], 1);
        assert_eq!(s1.shape(), &[2, 2]);
        assert_eq!(s1.data(), &[0., 5., 1., 6.]);
    }

    #[test]
    fn split_equal_roundtrips_concat() {
        let t = Tensor::arange(12).reshape(&[2, 6]);
        let parts = t.split_equal(1, 3);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0].shape(), &[2, 2]);
        let refs: Vec<&Tensor> = parts.iter().collect();
        let back = Tensor::concat(&refs, 1);
        assert_eq!(back.data(), t.data());
    }

    #[test]
    fn repeat_axis_tiles() {
        let t = Tensor::arange(2).reshape(&[1, 2]);
        let r = t.repeat_axis(0, 3);
        assert_eq!(r.shape(), &[3, 2]);
        assert_eq!(r.data(), &[0., 1., 0., 1., 0., 1.]);
    }

    #[test]
    fn assign_slice_inverts_slice() {
        let mut t = Tensor::zeros(&[2, 3]);
        let src = Tensor::from_vec(vec![7., 8.], &[2, 1]);
        t.assign_slice_axis(1, 1, &src);
        assert_eq!(t.data(), &[0., 7., 0., 0., 8., 0.]);
    }
}
