//! Edge-case coverage for the tensor crate: scalars, single-element axes,
//! zero-extent tensors, display formatting, and kernel boundary behaviour.

use elda_tensor::testutil::assert_allclose;
use elda_tensor::Tensor;

#[test]
fn scalar_arithmetic_works_end_to_end() {
    let a = Tensor::scalar(3.0);
    let b = Tensor::scalar(4.0);
    assert_eq!(a.add(&b).item(), 7.0);
    assert_eq!(a.mul(&b).item(), 12.0);
    assert_eq!(a.sub(&b).item(), -1.0);
    assert_eq!(a.sum_all(), 3.0);
    assert_eq!(a.mean_all(), 3.0);
}

#[test]
fn single_element_axes_behave_like_scalars() {
    let t = Tensor::from_vec(vec![5.0], &[1, 1, 1]);
    assert_eq!(t.sum_axis(1, false).shape(), &[1, 1]);
    assert_eq!(t.softmax_lastdim().data(), &[1.0]);
    assert_eq!(t.squeeze(0).squeeze(0).squeeze(0).item(), 5.0);
}

#[test]
fn zero_extent_tensors_are_representable() {
    let t = Tensor::zeros(&[0, 3]);
    assert!(t.is_empty());
    assert_eq!(t.len(), 0);
    assert_eq!(t.sum_all(), 0.0);
    // slicing an empty range out of a non-empty tensor
    let u = Tensor::arange(6).reshape(&[2, 3]).slice_axis(0, 1, 1);
    assert_eq!(u.shape(), &[0, 3]);
}

#[test]
fn matmul_with_unit_dimensions() {
    // (1,k) x (k,1) = scalar-ish (1,1)
    let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]);
    let b = Tensor::from_vec(vec![4.0, 5.0, 6.0], &[3, 1]);
    let c = a.matmul(&b);
    assert_eq!(c.shape(), &[1, 1]);
    assert_eq!(c.item(), 32.0);
    // outer product
    let outer = b.matmul(&a);
    assert_eq!(outer.shape(), &[3, 3]);
    assert_eq!(outer.at(&[2, 1]), 12.0);
}

#[test]
fn batched_matmul_with_batch_of_one() {
    let a = Tensor::arange(6).reshape(&[1, 2, 3]);
    let b = Tensor::arange(6).reshape(&[1, 3, 2]);
    let c = a.matmul_batched(&b);
    assert_eq!(c.shape(), &[1, 2, 2]);
    let a2 = a.reshape(&[2, 3]);
    let b2 = b.reshape(&[3, 2]);
    assert_allclose(&c.reshape(&[2, 2]), &a2.matmul(&b2), 1e-6, 0.0);
}

#[test]
fn display_truncates_large_tensors() {
    let small = Tensor::arange(4);
    let shown = format!("{small}");
    assert!(shown.contains("Tensor[4]"));
    assert!(shown.contains("3.0"));
    let large = Tensor::zeros(&[1000]);
    let shown = format!("{large}");
    assert!(shown.contains("1000 elements"));
    assert!(shown.len() < 200, "display must not dump the whole buffer");
}

#[test]
fn clamp_handles_inverted_and_equal_bounds() {
    let t = Tensor::from_vec(vec![-1.0, 0.5, 2.0], &[3]);
    let pinned = t.clamp(1.0, 1.0);
    assert_eq!(pinned.data(), &[1.0, 1.0, 1.0]);
}

#[test]
fn softmax_of_identical_logits_is_uniform() {
    let t = Tensor::full(&[2, 5], 42.0);
    let s = t.softmax_lastdim();
    for &v in s.data() {
        assert!((v - 0.2).abs() < 1e-6);
    }
}

#[test]
fn max_axis_with_negative_values() {
    let t = Tensor::from_vec(vec![-5.0, -1.0, -3.0, -2.0], &[2, 2]);
    assert_eq!(t.max_axis(1, false).data(), &[-1.0, -2.0]);
    assert_eq!(t.max_all(), -1.0);
    assert_eq!(t.min_all(), -5.0);
}

#[test]
fn permute_identity_is_noop() {
    let t = Tensor::arange(24).reshape(&[2, 3, 4]);
    assert_allclose(&t.permute(&[0, 1, 2]), &t, 0.0, 0.0);
}

#[test]
fn sum_to_shape_chain_of_broadcasts() {
    // grad flowing back through (2,3,4) -> (3,1) style broadcast
    let g = Tensor::ones(&[2, 3, 4]);
    let r = g.sum_to_shape(&[3, 1]);
    assert_eq!(r.shape(), &[3, 1]);
    assert!(r.data().iter().all(|&v| v == 8.0));
}

#[test]
fn eye_matmul_eye_is_eye() {
    let i = Tensor::eye(5);
    assert_allclose(&i.matmul(&i), &i, 0.0, 0.0);
}

#[test]
fn repeat_axis_once_is_identity() {
    let t = Tensor::arange(6).reshape(&[2, 3]);
    assert_allclose(&t.repeat_axis(0, 1), &t, 0.0, 0.0);
}

#[test]
fn gt_mask_at_boundary_is_strict() {
    let t = Tensor::from_vec(vec![-1.0, 0.0, 1.0], &[3]);
    assert_eq!(t.gt_mask(0.0).data(), &[0.0, 0.0, 1.0]);
}

#[test]
fn nan_propagates_through_elementwise_but_is_detectable() {
    let mut t = Tensor::ones(&[3]);
    t.data_mut()[1] = f32::NAN;
    let doubled = t.scale(2.0);
    assert!(!doubled.all_finite());
    assert!(doubled.data()[1].is_nan());
    assert_eq!(doubled.data()[0], 2.0);
}
