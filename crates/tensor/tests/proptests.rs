//! Property-based tests for the tensor kernels: algebraic identities that
//! must hold for arbitrary shapes and data.

use elda_tensor::testutil::assert_allclose;
use elda_tensor::Tensor;
use proptest::prelude::*;

/// Strategy: a tensor of the given shape with finite, moderate values.
fn tensor_of(dims: Vec<usize>) -> impl Strategy<Value = Tensor> {
    let n: usize = dims.iter().product();
    prop::collection::vec(-10.0f32..10.0, n).prop_map(move |data| Tensor::from_vec(data, &dims))
}

/// Strategy: a random small shape (rank 1..=3, extents 1..=5) plus its tensor.
fn any_small_tensor() -> impl Strategy<Value = Tensor> {
    prop::collection::vec(1usize..=5, 1..=3).prop_flat_map(tensor_of)
}

proptest! {
    #[test]
    fn add_commutes(t in any_small_tensor()) {
        let shape = t.shape().to_vec();
        let u = Tensor::ones(&shape).scale(0.5);
        assert_allclose(&t.add(&u), &u.add(&t), 1e-6, 1e-6);
    }

    #[test]
    fn mul_by_one_is_identity(t in any_small_tensor()) {
        assert_allclose(&t.mul(&Tensor::scalar(1.0)), &t, 0.0, 0.0);
    }

    #[test]
    fn sub_self_is_zero(t in any_small_tensor()) {
        let z = t.sub(&t);
        prop_assert!(z.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn neg_is_involution(t in any_small_tensor()) {
        assert_allclose(&t.neg().neg(), &t, 0.0, 0.0);
    }

    #[test]
    fn sum_axis_then_all_matches_sum_all(t in any_small_tensor()) {
        let total = t.sum_all();
        for axis in 0..t.rank() {
            let partial = t.sum_axis(axis, false).sum_all();
            prop_assert!((partial - total).abs() <= 1e-3 + 1e-4 * total.abs(),
                "axis {axis}: {partial} vs {total}");
        }
    }

    #[test]
    fn softmax_rows_are_distributions(t in any_small_tensor()) {
        let s = t.softmax_lastdim();
        prop_assert!(s.data().iter().all(|&v| (0.0..=1.0 + 1e-6).contains(&v)));
        let inner = t.shape()[t.rank() - 1];
        for row in s.data().chunks_exact(inner) {
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-5, "row sums to {sum}");
        }
    }

    #[test]
    fn transpose2d_is_involution(data in prop::collection::vec(-5.0f32..5.0, 12)) {
        let t = Tensor::from_vec(data, &[3, 4]);
        assert_allclose(&t.transpose2d().transpose2d(), &t, 0.0, 0.0);
    }

    #[test]
    fn matmul_distributes_over_add(
        a in tensor_of(vec![3, 4]),
        b in tensor_of(vec![4, 2]),
        c in tensor_of(vec![4, 2]),
    ) {
        let lhs = a.matmul(&b.add(&c));
        let rhs = a.matmul(&b).add(&a.matmul(&c));
        assert_allclose(&lhs, &rhs, 1e-3, 1e-3);
    }

    #[test]
    fn matmul_transpose_identity(
        a in tensor_of(vec![3, 4]),
        b in tensor_of(vec![4, 2]),
    ) {
        // (A B)^T = B^T A^T
        let lhs = a.matmul(&b).transpose2d();
        let rhs = b.transpose2d().matmul(&a.transpose2d());
        assert_allclose(&lhs, &rhs, 1e-4, 1e-4);
    }

    #[test]
    fn concat_slice_roundtrip(t in tensor_of(vec![4, 3])) {
        let top = t.slice_axis(0, 0, 2);
        let bottom = t.slice_axis(0, 2, 4);
        let back = Tensor::concat(&[&top, &bottom], 0);
        assert_allclose(&back, &t, 0.0, 0.0);
    }

    #[test]
    fn sum_to_shape_preserves_total(t in tensor_of(vec![3, 4])) {
        for target in [vec![3usize, 4], vec![3, 1], vec![4], vec![1, 4], vec![]] {
            let reduced = t.sum_to_shape(&target);
            prop_assert!((reduced.sum_all() - t.sum_all()).abs() < 1e-3);
        }
    }

    #[test]
    fn broadcast_equals_manual_tile(row in tensor_of(vec![4]), mat in tensor_of(vec![3, 4])) {
        let tiled = row.reshape(&[1, 4]).repeat_axis(0, 3);
        assert_allclose(&mat.add(&row), &mat.add(&tiled), 0.0, 0.0);
    }

    #[test]
    fn permute_then_inverse_is_identity(t in tensor_of(vec![2, 3, 4])) {
        let p = t.permute(&[2, 0, 1]);
        let back = p.permute(&[1, 2, 0]);
        assert_allclose(&back, &t, 0.0, 0.0);
    }
}
