//! Kernel equivalence harness: every optimized (blocked and/or
//! pool-parallel) kernel in `elda-tensor` must agree with its single-
//! threaded `*_naive` oracle.
//!
//! Two levels of agreement are asserted:
//!
//! * **Bitwise** for every kernel whose optimized path performs the exact
//!   same per-element arithmetic in the same order (elementwise ops, maps,
//!   axpy, per-axis reductions, softmax): parallelism only redistributes
//!   fixed work units, so even f32 rounding cannot differ.
//! * **Within 1e-5** for matmul, where the packed microkernel may contract
//!   multiplies and adds into FMAs and therefore rounds differently than
//!   the naive i-k-j loop.
//!
//! A final sweep re-runs representative kernels under thread counts
//! {1, 2, 4} and asserts *bitwise* identical outputs — the determinism
//! contract documented in `elda_tensor::ops`.

use elda_tensor::ops::{
    ELEMWISE_PAR_MIN_LEN, MATMUL_BLOCKED_MIN_FLOPS, MATMUL_PAR_MIN_FLOPS, REDUCE_PAR_MIN_LEN,
    SOFTMAX_PAR_MIN_LEN,
};
use elda_tensor::testutil::assert_allclose;
use elda_tensor::{pool, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Matmul tolerance: FMA contraction in the blocked microkernel rounds
/// differently than the naive two-op multiply-add.
const MM_RTOL: f32 = 1e-5;
const MM_ATOL: f32 = 1e-5;

fn rand_tensor(dims: &[usize], seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor::rand_uniform(dims, -1.0, 1.0, &mut rng)
}

// ---------------------------------------------------------------------------
// matmul family: naive oracle within 1e-5
// ---------------------------------------------------------------------------

/// Directed shape sweep crossing every dispatch boundary: 0-sized, size-1,
/// tall/skinny, ragged tiles, exactly-at-threshold, and above the parallel
/// threshold.
#[test]
fn matmul_matches_naive_across_dispatch_boundaries() {
    let cases: &[(usize, usize, usize)] = &[
        (0, 5, 3),      // zero rows
        (4, 0, 3),      // zero inner extent (all-zero output)
        (5, 4, 0),      // zero columns
        (1, 1, 1),      // single element
        (1, 64, 1),     // dot product shaped as matmul
        (3, 7, 5),      // small: naive path
        (31, 33, 31),   // just below the blocked threshold
        (32, 32, 32),   // exactly at MATMUL_BLOCKED_MIN_FLOPS
        (2048, 8, 8),   // tall/skinny, blocked, n < microkernel panel width
        (4, 8, 2048),   // short/wide, blocked
        (37, 53, 41),   // ragged in every dimension
        (129, 65, 66),  // ragged just past the row-tile grid
        (256, 256, 64), // above MATMUL_PAR_MIN_FLOPS: parallel row blocks
    ];
    for &(m, k, n) in cases {
        let a = rand_tensor(&[m, k], 1000 + m as u64);
        let b = rand_tensor(&[k, n], 2000 + n as u64);
        let opt = a.matmul(&b);
        let naive = a.matmul_naive(&b);
        assert_allclose(&opt, &naive, MM_RTOL, MM_ATOL);
    }
    // Confirm the sweep really crossed the boundaries it claims to cross.
    const _: () = assert!(31 * 33 * 31 < MATMUL_BLOCKED_MIN_FLOPS);
    const _: () = assert!(32 * 32 * 32 >= MATMUL_BLOCKED_MIN_FLOPS);
    const _: () = assert!(256 * 256 * 64 >= MATMUL_PAR_MIN_FLOPS);
}

#[test]
fn matmul_batched_matches_naive_across_dispatch_boundaries() {
    // (b, m, k, n, shared rank-2 rhs?)
    let cases: &[(usize, usize, usize, usize, bool)] = &[
        (0, 3, 4, 5, false),   // zero batches
        (2, 0, 4, 5, false),   // zero rows per slice
        (3, 2, 0, 2, true),    // zero inner extent, shared rhs
        (1, 1, 1, 1, true),    // single element
        (4, 3, 5, 2, false),   // small per-batch rhs
        (4, 3, 5, 2, true),    // small shared rhs
        (2, 37, 53, 41, true), // blocked slices, ragged, shared (pre-packed)
        (2, 37, 53, 41, false),
        (8, 64, 64, 128, true), // above MATMUL_PAR_MIN_FLOPS total: parallel
        (8, 64, 64, 128, false),
    ];
    for &(b, m, k, n, shared) in cases {
        let lhs = rand_tensor(&[b, m, k], 31 * b as u64 + m as u64);
        let rhs = if shared {
            rand_tensor(&[k, n], 77 + n as u64)
        } else {
            rand_tensor(&[b, k, n], 99 + k as u64)
        };
        let opt = lhs.matmul_batched(&rhs);
        let naive = lhs.matmul_batched_naive(&rhs);
        assert_allclose(&opt, &naive, MM_RTOL, MM_ATOL);
    }
    const _: () = assert!(8 * 64 * 64 * 128 >= MATMUL_PAR_MIN_FLOPS);
}

proptest! {
    /// Randomized matmul shapes, including degenerate extents, straddling
    /// the blocked-dispatch threshold.
    #[test]
    fn matmul_matches_naive_on_random_shapes(
        m in 0usize..48,
        k in 0usize..48,
        n in 0usize..48,
        seed in 0u64..1_000,
    ) {
        let a = rand_tensor(&[m, k], seed);
        let b = rand_tensor(&[k, n], seed.wrapping_add(1));
        assert_allclose(&a.matmul(&b), &a.matmul_naive(&b), MM_RTOL, MM_ATOL);
    }

    /// Randomized batched shapes with both shared and per-batch rhs.
    #[test]
    fn matmul_batched_matches_naive_on_random_shapes(
        b in 0usize..5,
        m in 0usize..24,
        k in 0usize..24,
        n in 0usize..24,
        seed in 0u64..1_000,
    ) {
        let shared = seed % 2 == 0;
        let lhs = rand_tensor(&[b, m, k], seed);
        let rhs = if shared {
            rand_tensor(&[k, n], seed.wrapping_add(2))
        } else {
            rand_tensor(&[b, k, n], seed.wrapping_add(2))
        };
        assert_allclose(
            &lhs.matmul_batched(&rhs),
            &lhs.matmul_batched_naive(&rhs),
            MM_RTOL,
            MM_ATOL,
        );
    }
}

// ---------------------------------------------------------------------------
// elementwise family: bitwise equal to the oracle
// ---------------------------------------------------------------------------

#[test]
fn elementwise_is_bitwise_equal_to_naive() {
    // One shape below the parallel threshold, one exactly at it, one above
    // with a ragged final chunk.
    for dims in [
        vec![0usize],
        vec![1],
        vec![513],
        vec![2, 65_536],    // exactly ELEMWISE_PAR_MIN_LEN
        vec![3, 5, 13_000], // above, not a multiple of the chunk length
    ] {
        let a = rand_tensor(&dims, 7);
        let b = rand_tensor(&dims, 8);
        assert_eq!(a.add(&b).data(), a.zip_with_naive(&b, |x, y| x + y).data());
        assert_eq!(a.mul(&b).data(), a.zip_with_naive(&b, |x, y| x * y).data());
        assert_eq!(a.exp().data(), a.map_naive(f32::exp).data());
        assert_eq!(a.relu().data(), a.map_naive(|v| v.max(0.0)).data());
        let mut acc = a.clone();
        acc.axpy_assign(0.25, &b);
        let mut acc_ref = a.clone();
        for (o, &s) in acc_ref.data_mut().iter_mut().zip(b.data()) {
            *o += 0.25 * s;
        }
        assert_eq!(acc.data(), acc_ref.data());
    }
    assert_eq!(2 * 65_536, ELEMWISE_PAR_MIN_LEN);
}

// ---------------------------------------------------------------------------
// reductions: per-axis bitwise, full sum within rounding of its oracle
// ---------------------------------------------------------------------------

#[test]
fn sum_axis_is_bitwise_equal_to_naive() {
    // Shapes chosen so each axis exercises the serial path, the outer>=2
    // parallel path, and the single-outer-row inner-chunked path.
    for dims in [
        vec![3usize, 4, 5],
        vec![40, 50, 70],    // volume 140k >= REDUCE_PAR_MIN_LEN
        vec![1, 2, 100_000], // axis 1: outer == 1 parallel path
        vec![200_000, 2],    // axis 1: one element per output row
    ] {
        let t = rand_tensor(&dims, 11);
        for axis in 0..dims.len() {
            for keepdim in [false, true] {
                let opt = t.sum_axis(axis, keepdim);
                let naive = t.sum_axis_naive(axis, keepdim);
                assert_eq!(opt.shape(), naive.shape());
                assert_eq!(opt.data(), naive.data(), "dims {dims:?} axis {axis}");
            }
        }
    }
    const _: () = assert!(40 * 50 * 70 >= REDUCE_PAR_MIN_LEN);
}

#[test]
fn sum_all_matches_naive_within_rounding() {
    for (dims, seed) in [
        (vec![100usize], 3u64),
        (vec![16_384], 4),  // exactly one accumulation block
        (vec![50_000], 5),  // blocked, serial fold
        (vec![300_000], 6), // blocked, pool-parallel fold
    ] {
        let t = rand_tensor(&dims, seed);
        let opt = t.sum_all();
        let naive = t.sum_all_naive();
        // Both accumulate in f64; only the f64 association differs across
        // block boundaries, so they agree to ~f32 epsilon of the magnitude.
        let scale = t.len().max(1) as f32;
        assert!(
            (opt - naive).abs() <= 1e-5 * scale,
            "dims {dims:?}: {opt} vs {naive}"
        );
    }
}

// ---------------------------------------------------------------------------
// softmax family: bitwise equal to the oracle
// ---------------------------------------------------------------------------

#[test]
fn softmax_is_bitwise_equal_to_naive() {
    for dims in [
        vec![1usize, 1],
        vec![5, 9],
        vec![0, 8],      // zero rows
        vec![64, 512],   // above SOFTMAX_PAR_MIN_LEN, even rows
        vec![129, 300],  // above, ragged chunking
        vec![1, 40_000], // one giant row (single chunk)
    ] {
        let t = rand_tensor(&dims, 13).scale(6.0);
        assert_eq!(
            t.softmax_lastdim().data(),
            t.softmax_lastdim_naive().data(),
            "softmax dims {dims:?}"
        );
        assert_eq!(
            t.log_softmax_lastdim().data(),
            t.log_softmax_lastdim_naive().data(),
            "log_softmax dims {dims:?}"
        );
    }
    const _: () = assert!(64 * 512 >= SOFTMAX_PAR_MIN_LEN);
}

// ---------------------------------------------------------------------------
// determinism: bit-identical outputs at any thread count
// ---------------------------------------------------------------------------

/// Runs `f` under each thread count and asserts all outputs are
/// bit-identical to the first.
fn assert_thread_invariant(name: &str, f: impl Fn() -> Vec<f32>) {
    let before = pool::configured_threads();
    pool::set_threads(1);
    let reference = f();
    for threads in [2usize, 4] {
        pool::set_threads(threads);
        let got = f();
        assert_eq!(
            reference.len(),
            got.len(),
            "{name}: length differs at {threads} threads"
        );
        for (i, (a, b)) in reference.iter().zip(&got).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{name}: element {i} differs at {threads} threads: {a} vs {b}"
            );
        }
    }
    pool::set_threads(before);
}

#[test]
fn kernels_are_bit_identical_across_thread_counts() {
    let a = rand_tensor(&[256, 256], 21);
    let b = rand_tensor(&[256, 64], 22);
    assert_thread_invariant("matmul", || a.matmul(&b).data().to_vec());

    let lhs = rand_tensor(&[8, 64, 64], 23);
    let rhs = rand_tensor(&[64, 128], 24);
    assert_thread_invariant("matmul_batched", || {
        lhs.matmul_batched(&rhs).data().to_vec()
    });

    let x = rand_tensor(&[200_000], 25);
    let y = rand_tensor(&[200_000], 26);
    assert_thread_invariant("add", || x.add(&y).data().to_vec());
    assert_thread_invariant("exp", || x.exp().data().to_vec());
    assert_thread_invariant("sum_all", || vec![x.sum_all()]);

    let t = rand_tensor(&[60, 50, 70], 27);
    assert_thread_invariant("sum_axis", || t.sum_axis(1, false).data().to_vec());

    let s = rand_tensor(&[129, 300], 28);
    assert_thread_invariant("softmax", || s.softmax_lastdim().data().to_vec());
    assert_thread_invariant("log_softmax", || s.log_softmax_lastdim().data().to_vec());
}
