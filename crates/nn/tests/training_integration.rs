//! Trainer-level integration: schedules, weight decay and shard
//! parallelism composed the way the experiment harnesses use them.

use elda_autodiff::{ParamId, Tape};
use elda_nn::{Adam, LrSchedule, Optimizer, ParamStore, Sgd, TrainConfig, Trainer};
use elda_tensor::Tensor;
use std::collections::HashMap;

/// A separable logistic problem shared by the tests.
fn problem() -> (ParamStore, Vec<Tensor>, Vec<f32>) {
    let mut ps = ParamStore::new();
    ps.register("w", Tensor::zeros(&[2, 1]));
    ps.register("b", Tensor::zeros(&[1]));
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for i in 0..96 {
        let x0 = (i % 12) as f32 / 6.0 - 1.0;
        let x1 = (i / 12) as f32 / 4.0 - 1.0;
        xs.push(Tensor::from_vec(vec![x0, x1], &[2]));
        ys.push(if 2.0 * x0 - x1 > 0.1 { 1.0 } else { 0.0 });
    }
    (ps, xs, ys)
}

fn loss_fn(
    ps: &ParamStore,
    idx: &[usize],
    xs: &[Tensor],
    ys: &[f32],
) -> (f32, HashMap<ParamId, Tensor>) {
    let mut tape = Tape::new();
    let n = idx.len();
    let xb = Tensor::from_vec(
        idx.iter().flat_map(|&i| xs[i].data().to_vec()).collect(),
        &[n, 2],
    );
    let yb = Tensor::from_vec(idx.iter().map(|&i| ys[i]).collect(), &[n, 1]);
    let x = tape.leaf(xb);
    let w = ps.bind(&mut tape, ps.by_name("w").unwrap().id);
    let b = ps.bind(&mut tape, ps.by_name("b").unwrap().id);
    let z = tape.matmul(x, w);
    let z = tape.add(z, b);
    let loss = tape.bce_with_logits(z, &yb);
    (
        tape.value(loss).item(),
        tape.backward(loss).into_param_map(),
    )
}

#[test]
fn cosine_schedule_composes_with_trainer() {
    let (mut ps, xs, ys) = problem();
    let trainer = Trainer::new(TrainConfig {
        epochs: 20,
        batch_size: 24,
        ..Default::default()
    });
    let mut opt = Adam::new(0.05);
    let schedule = LrSchedule::Cosine {
        total: 20,
        floor: 0.05,
    };
    let f = |ps: &ParamStore, idx: &[usize]| loss_fn(ps, idx, &xs, &ys);
    let mut last = f32::INFINITY;
    for epoch in 0..20 {
        schedule.apply(0.05, epoch, &mut opt);
        let stats = trainer.run_epoch(&mut ps, &mut opt, xs.len(), epoch, &f);
        last = stats.mean_loss;
    }
    assert!(
        last < 0.45,
        "cosine-scheduled training should converge, got {last}"
    );
    // lr ended near the floor
    assert!((opt.learning_rate() - 0.05 * schedule.multiplier(19)).abs() < 1e-6);
}

#[test]
fn weight_decay_regularizes_the_solution() {
    // With strong decay the learned weights stay smaller than without.
    let run = |wd: f32| -> f32 {
        let (mut ps, xs, ys) = problem();
        let trainer = Trainer::new(TrainConfig {
            epochs: 30,
            batch_size: 24,
            ..Default::default()
        });
        let mut opt = Sgd::new(0.5).with_weight_decay(wd);
        let f = |ps: &ParamStore, idx: &[usize]| loss_fn(ps, idx, &xs, &ys);
        for epoch in 0..30 {
            trainer.run_epoch(&mut ps, &mut opt, xs.len(), epoch, &f);
        }
        let w = ps.by_name("w").unwrap().value.clone();
        w.data().iter().map(|v| v * v).sum::<f32>().sqrt()
    };
    let free = run(0.0);
    let decayed = run(0.5);
    assert!(
        decayed < free,
        "decayed norm {decayed} should be below unregularized {free}"
    );
}

#[test]
fn threads_do_not_change_the_training_trajectory() {
    let run = |threads: usize| -> String {
        let (mut ps, xs, ys) = problem();
        let trainer = Trainer::new(TrainConfig {
            epochs: 5,
            batch_size: 32,
            threads,
            ..Default::default()
        });
        let mut opt = Adam::new(0.05);
        let f = |ps: &ParamStore, idx: &[usize]| loss_fn(ps, idx, &xs, &ys);
        for epoch in 0..5 {
            trainer.run_epoch(&mut ps, &mut opt, xs.len(), epoch, &f);
        }
        ps.to_json()
    };
    let serial = run(1);
    let parallel = run(4);
    // Bitwise equality can differ by summation order; compare parsed values.
    let a: serde_json::Value = serde_json::from_str(&serial).unwrap();
    let b: serde_json::Value = serde_json::from_str(&parallel).unwrap();
    let extract = |v: &serde_json::Value| -> Vec<f64> {
        v.as_array()
            .unwrap()
            .iter()
            .flat_map(|rec| {
                rec["data"]
                    .as_array()
                    .unwrap()
                    .iter()
                    .map(|x| x.as_f64().unwrap())
                    .collect::<Vec<_>>()
            })
            .collect()
    };
    for (x, y) in extract(&a).iter().zip(extract(&b).iter()) {
        assert!((x - y).abs() < 1e-3, "{x} vs {y}");
    }
}

#[test]
fn warmup_starts_slow() {
    // First-epoch parameter movement under warmup must be smaller than
    // without it (same seed, same data order).
    let step_norm = |schedule: Option<LrSchedule>| -> f32 {
        let (mut ps, xs, ys) = problem();
        let trainer = Trainer::new(TrainConfig {
            epochs: 1,
            batch_size: 96,
            ..Default::default()
        });
        let mut opt = Sgd::new(0.5);
        if let Some(s) = schedule {
            s.apply(0.5, 0, &mut opt);
        }
        let f = |ps: &ParamStore, idx: &[usize]| loss_fn(ps, idx, &xs, &ys);
        trainer.run_epoch(&mut ps, &mut opt, xs.len(), 0, &f);
        let w = ps.by_name("w").unwrap().value.clone();
        w.data().iter().map(|v| v * v).sum::<f32>().sqrt()
    };
    let cold = step_norm(Some(LrSchedule::Warmup { warmup: 10 }));
    let hot = step_norm(None);
    assert!(
        cold < hot,
        "warmup step {cold} should be smaller than full-lr step {hot}"
    );
}
