//! Sinusoidal positional encoding (Vaswani et al. 2017), used by the SAnD
//! baseline to inject temporal order into its self-attention blocks.

use elda_tensor::Tensor;

/// The classic transformer positional encoding of shape `(t_len, dim)`:
/// `PE[t, 2i] = sin(t / 10000^{2i/dim})`, `PE[t, 2i+1] = cos(...)`.
pub fn positional_encoding(t_len: usize, dim: usize) -> Tensor {
    let mut data = vec![0.0f32; t_len * dim];
    for t in 0..t_len {
        for i in 0..dim {
            let pair = (i / 2) as f32;
            let angle = t as f32 / 10000f32.powf(2.0 * pair / dim as f32);
            data[t * dim + i] = if i % 2 == 0 { angle.sin() } else { angle.cos() };
        }
    }
    Tensor::from_vec(data, &[t_len, dim])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_range() {
        let pe = positional_encoding(10, 8);
        assert_eq!(pe.shape(), &[10, 8]);
        assert!(pe.data().iter().all(|&v| (-1.0..=1.0).contains(&v)));
    }

    #[test]
    fn first_row_is_sin0_cos0() {
        let pe = positional_encoding(4, 6);
        for i in 0..6 {
            let expected = if i % 2 == 0 { 0.0 } else { 1.0 };
            assert_eq!(pe.at(&[0, i]), expected);
        }
    }

    #[test]
    fn rows_differ_over_time() {
        let pe = positional_encoding(16, 4);
        let r1 = pe.select(0, 1);
        let r7 = pe.select(0, 7);
        assert_ne!(r1.data(), r7.data());
    }
}
