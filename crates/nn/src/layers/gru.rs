//! Gated recurrent unit (Cho et al. 2014), the temporal backbone of the
//! paper's ELDA-Net and of the GRU/RETAIN/Dipole/ConCare baselines.

use crate::init::Init;
use crate::params::ParamStore;
use elda_autodiff::{ParamId, Tape, Var};
use elda_tensor::Tensor;
use rand::Rng;

/// One GRU cell: the per-step recurrence.
///
/// Uses the Keras convention
/// `h_t = z ⊙ h_{t-1} + (1 − z) ⊙ h̃` with
/// `z = σ(x W_z + h U_z + b_z)`, `r = σ(x W_r + h U_r + b_r)` and
/// `h̃ = tanh(x W_h + (r ⊙ h) U_h + b_h)`.
pub struct GruCell {
    wz: ParamId,
    uz: ParamId,
    bz: ParamId,
    wr: ParamId,
    ur: ParamId,
    br: ParamId,
    wh: ParamId,
    uh: ParamId,
    bh: ParamId,
    in_dim: usize,
    hidden: usize,
}

impl GruCell {
    /// Registers the cell's nine parameters under `name.*`.
    pub fn new(
        ps: &mut ParamStore,
        name: &str,
        in_dim: usize,
        hidden: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let mut w = |suffix: &str, dims: &[usize], rng: &mut dyn rand::RngCore| {
            ps.register(&format!("{name}.{suffix}"), Init::Glorot.build(dims, rng))
        };
        let wz = w("wz", &[in_dim, hidden], rng);
        let uz = w("uz", &[hidden, hidden], rng);
        let wr = w("wr", &[in_dim, hidden], rng);
        let ur = w("ur", &[hidden, hidden], rng);
        let wh = w("wh", &[in_dim, hidden], rng);
        let uh = w("uh", &[hidden, hidden], rng);
        let bz = ps.register(&format!("{name}.bz"), Tensor::zeros(&[hidden]));
        let br = ps.register(&format!("{name}.br"), Tensor::zeros(&[hidden]));
        let bh = ps.register(&format!("{name}.bh"), Tensor::zeros(&[hidden]));
        GruCell {
            wz,
            uz,
            bz,
            wr,
            ur,
            br,
            wh,
            uh,
            bh,
            in_dim,
            hidden,
        }
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// One recurrence step: `x (B, in)`, `h (B, hidden)` → new `h`.
    pub fn step(&self, ps: &ParamStore, tape: &mut Tape, x: Var, h: Var) -> Var {
        let (wz, uz, bz) = (
            ps.bind(tape, self.wz),
            ps.bind(tape, self.uz),
            ps.bind(tape, self.bz),
        );
        let (wr, ur, br) = (
            ps.bind(tape, self.wr),
            ps.bind(tape, self.ur),
            ps.bind(tape, self.br),
        );
        let (wh, uh, bh) = (
            ps.bind(tape, self.wh),
            ps.bind(tape, self.uh),
            ps.bind(tape, self.bh),
        );

        let xz = tape.matmul(x, wz);
        let hz = tape.matmul(h, uz);
        let z_pre = tape.add(xz, hz);
        let z_pre = tape.add(z_pre, bz);
        let z = tape.sigmoid(z_pre);

        let xr = tape.matmul(x, wr);
        let hr = tape.matmul(h, ur);
        let r_pre = tape.add(xr, hr);
        let r_pre = tape.add(r_pre, br);
        let r = tape.sigmoid(r_pre);

        let xh = tape.matmul(x, wh);
        let rh = tape.mul(r, h);
        let rhu = tape.matmul(rh, uh);
        let h_pre = tape.add(xh, rhu);
        let h_pre = tape.add(h_pre, bh);
        let cand = tape.tanh(h_pre);

        // h' = z*h + (1-z)*cand
        let keep = tape.mul(z, h);
        let negz = tape.neg(z);
        let omz = tape.add_scalar(negz, 1.0);
        let take = tape.mul(omz, cand);
        tape.add(keep, take)
    }
}

/// A full GRU layer unrolled over time.
pub struct Gru {
    cell: GruCell,
}

impl Gru {
    /// Registers a GRU layer under `name.*`.
    pub fn new(
        ps: &mut ParamStore,
        name: &str,
        in_dim: usize,
        hidden: usize,
        rng: &mut impl Rng,
    ) -> Self {
        Gru {
            cell: GruCell::new(ps, name, in_dim, hidden, rng),
        }
    }

    /// The underlying cell.
    pub fn cell(&self) -> &GruCell {
        &self.cell
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.cell.hidden
    }

    /// Unrolls over a `(B, T, in)` input, returning the `T` hidden states
    /// (each `(B, hidden)`), oldest first. `h_0 = 0`.
    pub fn forward_seq(&self, ps: &ParamStore, tape: &mut Tape, x: Var) -> Vec<Var> {
        let dims = tape.shape(x).to_vec();
        assert_eq!(
            dims.len(),
            3,
            "Gru::forward_seq expects (B,T,D), got {dims:?}"
        );
        let (b, t_len) = (dims[0], dims[1]);
        let mut h = tape.constant(Tensor::zeros(&[b, self.cell.hidden]));
        let mut outs = Vec::with_capacity(t_len);
        for t in 0..t_len {
            let xt = tape.select(x, 1, t);
            h = self.cell.step(ps, tape, xt, h);
            outs.push(h);
        }
        outs
    }

    /// Unrolls over pre-sliced step inputs (each `(B, in)`), oldest first.
    /// Useful when the per-step features are produced by upstream modules
    /// (as in ELDA-Net, where each step went through the feature-level
    /// interaction module first).
    pub fn forward_steps(&self, ps: &ParamStore, tape: &mut Tape, xs: &[Var]) -> Vec<Var> {
        assert!(!xs.is_empty(), "empty sequence");
        let b = tape.shape(xs[0])[0];
        let mut h = tape.constant(Tensor::zeros(&[b, self.cell.hidden]));
        let mut outs = Vec::with_capacity(xs.len());
        for &xt in xs {
            h = self.cell.step(ps, tape, xt, h);
            outs.push(h);
        }
        outs
    }

    /// Unrolls in reverse time order (newest step first), as RETAIN's
    /// attention GRUs do. Returned states still align with the *original*
    /// time indexing: `outs[t]` is the reverse-run state at step `t`.
    pub fn forward_seq_reversed(&self, ps: &ParamStore, tape: &mut Tape, x: Var) -> Vec<Var> {
        let dims = tape.shape(x).to_vec();
        assert_eq!(dims.len(), 3, "Gru::forward_seq_reversed expects (B,T,D)");
        let (b, t_len) = (dims[0], dims[1]);
        let mut h = tape.constant(Tensor::zeros(&[b, self.cell.hidden]));
        let mut outs = vec![None; t_len];
        for t in (0..t_len).rev() {
            let xt = tape.select(x, 1, t);
            h = self.cell.step(ps, tape, xt, h);
            outs[t] = Some(h);
        }
        outs.into_iter().map(|o| o.expect("filled")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (ParamStore, Gru) {
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(7);
        let gru = Gru::new(&mut ps, "gru", 3, 5, &mut rng);
        (ps, gru)
    }

    #[test]
    fn forward_seq_shapes() {
        let (ps, gru) = setup();
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::rand_normal(
            &[2, 4, 3],
            0.0,
            1.0,
            &mut StdRng::seed_from_u64(1),
        ));
        let outs = gru.forward_seq(&ps, &mut tape, x);
        assert_eq!(outs.len(), 4);
        for &o in &outs {
            assert_eq!(tape.shape(o), &[2, 5]);
        }
    }

    #[test]
    fn hidden_states_stay_bounded() {
        // GRU hidden states are convex blends of tanh outputs, so |h| <= 1.
        let (ps, gru) = setup();
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::rand_normal(
            &[2, 10, 3],
            0.0,
            5.0,
            &mut StdRng::seed_from_u64(2),
        ));
        let outs = gru.forward_seq(&ps, &mut tape, x);
        for &o in &outs {
            assert!(tape.value(o).data().iter().all(|&v| v.abs() <= 1.0 + 1e-5));
        }
    }

    #[test]
    fn zero_input_keeps_small_state() {
        let (ps, gru) = setup();
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::zeros(&[1, 3, 3]));
        let outs = gru.forward_seq(&ps, &mut tape, x);
        // with zero bias and zero input, h stays exactly 0
        assert!(tape.value(outs[2]).data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn gradients_flow_to_all_nine_params() {
        let (ps, gru) = setup();
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::rand_normal(
            &[2, 4, 3],
            0.0,
            1.0,
            &mut StdRng::seed_from_u64(3),
        ));
        let outs = gru.forward_seq(&ps, &mut tape, x);
        let last = *outs.last().unwrap();
        let sq = tape.square(last);
        let loss = tape.sum_all(sq);
        let grads = tape.backward(loss);
        for p in ps.iter() {
            assert!(grads.param(p.id).is_some(), "no grad for {}", p.name);
        }
    }

    #[test]
    fn reversed_run_differs_from_forward() {
        let (ps, gru) = setup();
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::rand_normal(
            &[1, 4, 3],
            0.0,
            1.0,
            &mut StdRng::seed_from_u64(4),
        ));
        let fwd = gru.forward_seq(&ps, &mut tape, x);
        let rev = gru.forward_seq_reversed(&ps, &mut tape, x);
        assert_eq!(fwd.len(), rev.len());
        // The state at t=0: forward has seen 1 step, reverse has seen all 4.
        let f0 = tape.value(fwd[0]).clone();
        let r0 = tape.value(rev[0]).clone();
        assert_ne!(f0.data(), r0.data());
    }

    #[test]
    fn forward_steps_matches_forward_seq() {
        let (ps, gru) = setup();
        let mut tape = Tape::new();
        let data = Tensor::rand_normal(&[2, 4, 3], 0.0, 1.0, &mut StdRng::seed_from_u64(5));
        let x = tape.leaf(data.clone());
        let outs_seq = gru.forward_seq(&ps, &mut tape, x);
        let steps: Vec<Var> = (0..4)
            .map(|t| {
                let xt = data.select(1, t);
                tape.leaf(xt)
            })
            .collect();
        let outs_steps = gru.forward_steps(&ps, &mut tape, &steps);
        for (a, b) in outs_seq.iter().zip(&outs_steps) {
            elda_tensor::testutil::assert_allclose(tape.value(*a), tape.value(*b), 1e-5, 1e-6);
        }
    }
}
