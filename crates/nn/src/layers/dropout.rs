//! Inverted dropout.
//!
//! The mask is sampled outside the tape and applied as a constant
//! multiplier, so the backward pass automatically routes gradients only
//! through the surviving units. At evaluation time dropout is the
//! identity (inverted scaling keeps expectations equal between modes).

use elda_autodiff::{Tape, Var};
use elda_tensor::Tensor;
use rand::Rng;

/// Dropout with keep probability `1 − rate`.
#[derive(Debug, Clone, Copy)]
pub struct Dropout {
    rate: f32,
}

impl Dropout {
    /// A dropout layer dropping each unit with probability `rate`.
    ///
    /// # Panics
    /// Panics unless `0 ≤ rate < 1`.
    pub fn new(rate: f32) -> Self {
        assert!(
            (0.0..1.0).contains(&rate),
            "dropout rate must be in [0, 1), got {rate}"
        );
        Dropout { rate }
    }

    /// The drop probability.
    pub fn rate(&self) -> f32 {
        self.rate
    }

    /// Applies dropout during training: multiplies by a fresh Bernoulli
    /// mask scaled by `1/(1−rate)`.
    pub fn forward_train(&self, tape: &mut Tape, x: Var, rng: &mut (impl Rng + ?Sized)) -> Var {
        if self.rate == 0.0 {
            return x;
        }
        let shape = tape.shape(x).to_vec();
        let keep = 1.0 - self.rate;
        let mask = Tensor::rand_bernoulli(&shape, keep, rng).scale(1.0 / keep);
        let m = tape.constant(mask);
        tape.mul(x, m)
    }

    /// Evaluation mode: the identity.
    pub fn forward_eval(&self, _tape: &mut Tape, x: Var) -> Var {
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn eval_mode_is_identity() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::arange(6));
        let d = Dropout::new(0.5);
        let y = d.forward_eval(&mut tape, x);
        assert_eq!(x, y);
    }

    #[test]
    fn zero_rate_is_identity_in_train_mode() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::arange(6));
        let y = Dropout::new(0.0).forward_train(&mut tape, x, &mut StdRng::seed_from_u64(1));
        assert_eq!(x, y);
    }

    #[test]
    fn surviving_units_are_scaled_up() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::ones(&[1000]));
        let d = Dropout::new(0.5);
        let y = d.forward_train(&mut tape, x, &mut StdRng::seed_from_u64(2));
        let vals = tape.value(y);
        // every output is 0 or 1/keep = 2
        assert!(vals
            .data()
            .iter()
            .all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-6));
        // expectation preserved within sampling error
        let mean = vals.mean_all();
        assert!((mean - 1.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn gradient_flows_only_through_kept_units() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::ones(&[64]));
        let d = Dropout::new(0.3);
        let y = d.forward_train(&mut tape, x, &mut StdRng::seed_from_u64(3));
        let loss = tape.sum_all(y);
        let grads = tape.backward(loss);
        let g = grads.wrt(x).unwrap();
        let out = tape.value(y);
        for (gi, yi) in g.data().iter().zip(out.data()) {
            if *yi == 0.0 {
                assert_eq!(*gi, 0.0, "dropped unit leaked gradient");
            } else {
                assert!(*gi > 0.0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "dropout rate")]
    fn rate_one_is_rejected() {
        Dropout::new(1.0);
    }
}
