//! Fully connected layer.

use crate::init::Init;
use crate::params::ParamStore;
use elda_autodiff::{ParamId, Tape, Var};
use rand::Rng;

/// Activation applied after the affine map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// No activation.
    Linear,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Rectified linear unit.
    Relu,
}

/// A dense (fully connected) layer `y = act(x W + b)`.
pub struct Dense {
    w: ParamId,
    b: Option<ParamId>,
    activation: Activation,
    in_dim: usize,
    out_dim: usize,
}

impl Dense {
    /// Registers a dense layer's parameters under `name.{w,b}`.
    pub fn new(
        ps: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        activation: Activation,
        rng: &mut impl Rng,
    ) -> Self {
        let w = ps.register(
            &format!("{name}.w"),
            Init::Glorot.build(&[in_dim, out_dim], rng),
        );
        let b = Some(ps.register(&format!("{name}.b"), Init::Zeros.build(&[out_dim], rng)));
        Dense {
            w,
            b,
            activation,
            in_dim,
            out_dim,
        }
    }

    /// A bias-free variant.
    pub fn new_no_bias(
        ps: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        activation: Activation,
        rng: &mut impl Rng,
    ) -> Self {
        let w = ps.register(
            &format!("{name}.w"),
            Init::Glorot.build(&[in_dim, out_dim], rng),
        );
        Dense {
            w,
            b: None,
            activation,
            in_dim,
            out_dim,
        }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Applies the layer to a `(B, in_dim)` input, yielding `(B, out_dim)`.
    pub fn forward(&self, ps: &ParamStore, tape: &mut Tape, x: Var) -> Var {
        assert_eq!(
            tape.shape(x).last().copied(),
            Some(self.in_dim),
            "Dense expects trailing dim {}, got {:?}",
            self.in_dim,
            tape.shape(x)
        );
        let w = ps.bind(tape, self.w);
        let mut y = match tape.shape(x).len() {
            2 => tape.matmul(x, w),
            3 => tape.matmul_batched(x, w),
            r => panic!("Dense supports rank-2/3 inputs, got rank {r}"),
        };
        if let Some(b) = self.b {
            let b = ps.bind(tape, b);
            y = tape.add(y, b); // bias broadcasts over leading axes
        }
        self.activate(tape, y)
    }

    fn activate(&self, tape: &mut Tape, y: Var) -> Var {
        match self.activation {
            Activation::Linear => y,
            Activation::Sigmoid => tape.sigmoid(y),
            Activation::Tanh => tape.tanh(y),
            Activation::Relu => tape.relu(y),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elda_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(act: Activation) -> (ParamStore, Dense) {
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let d = Dense::new(&mut ps, "fc", 3, 2, act, &mut rng);
        (ps, d)
    }

    #[test]
    fn forward_shape_2d() {
        let (ps, d) = setup(Activation::Linear);
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::ones(&[4, 3]));
        let y = d.forward(&ps, &mut tape, x);
        assert_eq!(tape.shape(y), &[4, 2]);
    }

    #[test]
    fn forward_shape_3d() {
        let (ps, d) = setup(Activation::Tanh);
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::ones(&[4, 5, 3]));
        let y = d.forward(&ps, &mut tape, x);
        assert_eq!(tape.shape(y), &[4, 5, 2]);
    }

    #[test]
    fn sigmoid_activation_bounds_output() {
        let (ps, d) = setup(Activation::Sigmoid);
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::full(&[2, 3], 100.0));
        let y = d.forward(&ps, &mut tape, x);
        assert!(tape
            .value(y)
            .data()
            .iter()
            .all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn gradients_reach_both_params() {
        let (ps, d) = setup(Activation::Relu);
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::ones(&[2, 3]));
        let y = d.forward(&ps, &mut tape, x);
        let sq = tape.square(y);
        let loss = tape.sum_all(sq);
        let grads = tape.backward(loss);
        let w = ps.by_name("fc.w").unwrap().id;
        let b = ps.by_name("fc.b").unwrap().id;
        assert!(grads.param(w).is_some());
        assert!(grads.param(b).is_some());
    }

    #[test]
    #[should_panic(expected = "trailing dim")]
    fn wrong_input_width_panics() {
        let (ps, d) = setup(Activation::Linear);
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::ones(&[4, 5]));
        d.forward(&ps, &mut tape, x);
    }
}
