//! Attention helpers shared by the baselines (Dipole, SAnD, ConCare).
//!
//! Each helper records ops on the caller's tape and returns both the pooled
//! context and the attention weights so models can expose interpretability.

use elda_autodiff::{Tape, Var};

/// Scaled dot-product attention pooling of a sequence with one query.
///
/// * `keys`: `(B, T, H)` — also used as values.
/// * `query`: `(B, H)`.
///
/// Returns `(context (B, H), weights (B, T))` with
/// `weights = softmax(keys · query / sqrt(H))`.
pub fn dot_attention_pool(tape: &mut Tape, keys: Var, query: Var) -> (Var, Var) {
    let kd = tape.shape(keys).to_vec();
    assert_eq!(kd.len(), 3, "keys must be (B,T,H), got {kd:?}");
    let (b, t, h) = (kd[0], kd[1], kd[2]);
    assert_eq!(tape.shape(query), &[b, h], "query must be (B,H)");
    // scores (B,T,1) = keys (B,T,H) @ query (B,H,1)
    let q3 = tape.reshape(query, &[b, h, 1]);
    let scores = tape.matmul_batched(keys, q3);
    let scores = tape.scale(scores, 1.0 / (h as f32).sqrt());
    let scores2 = tape.reshape(scores, &[b, t]);
    let weights = tape.softmax_lastdim(scores2);
    // context (B,1,H) = weights (B,1,T) @ keys (B,T,H)
    let w3 = tape.reshape(weights, &[b, 1, t]);
    let ctx = tape.matmul_batched(w3, keys);
    let ctx2 = tape.reshape(ctx, &[b, h]);
    (ctx2, weights)
}

/// Unnormalized additive (concat) attention energies à la Bahdanau /
/// Dipole-c: `e_t = vᵀ tanh(W [k_t ; q])`, computed for every step at once.
///
/// * `keys`: `(B, T, H)`; `query`: `(B, H)`.
/// * `w`: `(2H, A)` projection var; `v`: `(A, 1)` scoring var.
///
/// Returns energies `(B, T)` (softmax is left to the caller, which may want
/// to mask or truncate first).
pub fn additive_attention_scores(tape: &mut Tape, keys: Var, query: Var, w: Var, v: Var) -> Var {
    let kd = tape.shape(keys).to_vec();
    let (b, t, h) = (kd[0], kd[1], kd[2]);
    // tile the query along T: (B,H) -> (B,1,H) broadcast-added to zeros(B,T,H)
    let q3 = tape.reshape(query, &[b, 1, h]);
    let zeros = tape.constant(elda_tensor::Tensor::zeros(&[b, t, h]));
    let qt = tape.add(zeros, q3); // (B,T,H) via broadcast
    let cat = tape.concat(&[keys, qt], 2); // (B,T,2H)
    let proj = tape.matmul_batched(cat, w); // (B,T,A)
    let act = tape.tanh(proj);
    let e = tape.matmul_batched(act, v); // (B,T,1)
    tape.reshape(e, &[b, t])
}

#[cfg(test)]
mod tests {
    use super::*;
    use elda_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dot_attention_shapes_and_simplex() {
        let mut tape = Tape::new();
        let mut rng = StdRng::seed_from_u64(0);
        let keys = tape.leaf(Tensor::rand_normal(&[2, 5, 4], 0.0, 1.0, &mut rng));
        let query = tape.leaf(Tensor::rand_normal(&[2, 4], 0.0, 1.0, &mut rng));
        let (ctx, w) = dot_attention_pool(&mut tape, keys, query);
        assert_eq!(tape.shape(ctx), &[2, 4]);
        assert_eq!(tape.shape(w), &[2, 5]);
        for row in tape.value(w).data().chunks_exact(5) {
            assert!((row.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn dot_attention_favors_aligned_key() {
        let mut tape = Tape::new();
        // key 2 equals the query; others are orthogonal
        let keys = tape.leaf(Tensor::from_vec(
            vec![
                1., 0., 0., 0., //
                0., 1., 0., 0., //
                0., 0., 5., 0., //
            ],
            &[1, 3, 4],
        ));
        let query = tape.leaf(Tensor::from_vec(vec![0., 0., 5., 0.], &[1, 4]));
        let (_, w) = dot_attention_pool(&mut tape, keys, query);
        let weights = tape.value(w).data();
        assert!(weights[2] > weights[0] && weights[2] > weights[1]);
    }

    #[test]
    fn additive_scores_shape() {
        let mut tape = Tape::new();
        let mut rng = StdRng::seed_from_u64(1);
        let keys = tape.leaf(Tensor::rand_normal(&[2, 6, 3], 0.0, 1.0, &mut rng));
        let query = tape.leaf(Tensor::rand_normal(&[2, 3], 0.0, 1.0, &mut rng));
        let w = tape.leaf(Tensor::rand_normal(&[6, 4], 0.0, 1.0, &mut rng));
        let v = tape.leaf(Tensor::rand_normal(&[4, 1], 0.0, 1.0, &mut rng));
        let e = additive_attention_scores(&mut tape, keys, query, w, v);
        assert_eq!(tape.shape(e), &[2, 6]);
        assert!(tape.value(e).all_finite());
    }

    #[test]
    fn attention_gradients_flow_to_query() {
        let mut tape = Tape::new();
        let mut rng = StdRng::seed_from_u64(2);
        let keys = tape.leaf(Tensor::rand_normal(&[1, 4, 3], 0.0, 1.0, &mut rng));
        let query = tape.leaf(Tensor::rand_normal(&[1, 3], 0.0, 1.0, &mut rng));
        let (ctx, _) = dot_attention_pool(&mut tape, keys, query);
        let sq = tape.square(ctx);
        let loss = tape.sum_all(sq);
        let grads = tape.backward(loss);
        assert!(grads.wrt(query).is_some());
        assert!(grads.wrt(keys).is_some());
    }
}
