//! Long short-term memory cell and layer (Hochreiter & Schmidhuber 1997),
//! used by the StageNet baseline.

use crate::init::Init;
use crate::params::ParamStore;
use elda_autodiff::{ParamId, Tape, Var};
use elda_tensor::Tensor;
use rand::Rng;

/// One LSTM cell.
///
/// Standard equations with a forget-gate bias initialized to 1 (the usual
/// trick to keep early training from forgetting everything):
/// `i,f,o = σ(xW + hU + b)`, `g = tanh(xW_g + hU_g + b_g)`,
/// `c' = f ⊙ c + i ⊙ g`, `h' = o ⊙ tanh(c')`.
pub struct LstmCell {
    wi: ParamId,
    ui: ParamId,
    bi: ParamId,
    wf: ParamId,
    uf: ParamId,
    bf: ParamId,
    wo: ParamId,
    uo: ParamId,
    bo: ParamId,
    wg: ParamId,
    ug: ParamId,
    bg: ParamId,
    in_dim: usize,
    hidden: usize,
}

/// The `(h, c)` state pair threaded through an LSTM unroll.
#[derive(Clone, Copy)]
pub struct LstmState {
    /// Hidden state `(B, hidden)`.
    pub h: Var,
    /// Cell state `(B, hidden)`.
    pub c: Var,
}

impl LstmCell {
    /// Registers the cell's twelve parameters under `name.*`.
    pub fn new(
        ps: &mut ParamStore,
        name: &str,
        in_dim: usize,
        hidden: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let mut w = |suffix: &str, dims: &[usize], rng: &mut dyn rand::RngCore| {
            ps.register(&format!("{name}.{suffix}"), Init::Glorot.build(dims, rng))
        };
        let wi = w("wi", &[in_dim, hidden], rng);
        let ui = w("ui", &[hidden, hidden], rng);
        let wf = w("wf", &[in_dim, hidden], rng);
        let uf = w("uf", &[hidden, hidden], rng);
        let wo = w("wo", &[in_dim, hidden], rng);
        let uo = w("uo", &[hidden, hidden], rng);
        let wg = w("wg", &[in_dim, hidden], rng);
        let ug = w("ug", &[hidden, hidden], rng);
        let bi = ps.register(&format!("{name}.bi"), Tensor::zeros(&[hidden]));
        let bf = ps.register(&format!("{name}.bf"), Tensor::ones(&[hidden]));
        let bo = ps.register(&format!("{name}.bo"), Tensor::zeros(&[hidden]));
        let bg = ps.register(&format!("{name}.bg"), Tensor::zeros(&[hidden]));
        LstmCell {
            wi,
            ui,
            bi,
            wf,
            uf,
            bf,
            wo,
            uo,
            bo,
            wg,
            ug,
            bg,
            in_dim,
            hidden,
        }
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    #[allow(clippy::too_many_arguments)] // one call site per gate; a struct would obscure the math
    fn gate(
        &self,
        ps: &ParamStore,
        tape: &mut Tape,
        x: Var,
        h: Var,
        w: ParamId,
        u: ParamId,
        b: ParamId,
    ) -> Var {
        let (w, u, b) = (ps.bind(tape, w), ps.bind(tape, u), ps.bind(tape, b));
        let xw = tape.matmul(x, w);
        let hu = tape.matmul(h, u);
        let s = tape.add(xw, hu);
        tape.add(s, b)
    }

    /// One recurrence step.
    pub fn step(&self, ps: &ParamStore, tape: &mut Tape, x: Var, state: LstmState) -> LstmState {
        let i_pre = self.gate(ps, tape, x, state.h, self.wi, self.ui, self.bi);
        let f_pre = self.gate(ps, tape, x, state.h, self.wf, self.uf, self.bf);
        let o_pre = self.gate(ps, tape, x, state.h, self.wo, self.uo, self.bo);
        let g_pre = self.gate(ps, tape, x, state.h, self.wg, self.ug, self.bg);
        let i = tape.sigmoid(i_pre);
        let f = tape.sigmoid(f_pre);
        let o = tape.sigmoid(o_pre);
        let g = tape.tanh(g_pre);
        let fc = tape.mul(f, state.c);
        let ig = tape.mul(i, g);
        let c = tape.add(fc, ig);
        let tc = tape.tanh(c);
        let h = tape.mul(o, tc);
        LstmState { h, c }
    }
}

/// An LSTM layer unrolled over time.
pub struct Lstm {
    cell: LstmCell,
}

impl Lstm {
    /// Registers an LSTM layer under `name.*`.
    pub fn new(
        ps: &mut ParamStore,
        name: &str,
        in_dim: usize,
        hidden: usize,
        rng: &mut impl Rng,
    ) -> Self {
        Lstm {
            cell: LstmCell::new(ps, name, in_dim, hidden, rng),
        }
    }

    /// The underlying cell.
    pub fn cell(&self) -> &LstmCell {
        &self.cell
    }

    /// Unrolls over a `(B, T, in)` input; returns the `T` hidden states.
    pub fn forward_seq(&self, ps: &ParamStore, tape: &mut Tape, x: Var) -> Vec<Var> {
        let dims = tape.shape(x).to_vec();
        assert_eq!(
            dims.len(),
            3,
            "Lstm::forward_seq expects (B,T,D), got {dims:?}"
        );
        let (b, t_len) = (dims[0], dims[1]);
        let h0 = tape.constant(Tensor::zeros(&[b, self.cell.hidden]));
        let c0 = tape.constant(Tensor::zeros(&[b, self.cell.hidden]));
        let mut state = LstmState { h: h0, c: c0 };
        let mut outs = Vec::with_capacity(t_len);
        for t in 0..t_len {
            let xt = tape.select(x, 1, t);
            state = self.cell.step(ps, tape, xt, state);
            outs.push(state.h);
        }
        outs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (ParamStore, Lstm) {
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(11);
        let lstm = Lstm::new(&mut ps, "lstm", 3, 4, &mut rng);
        (ps, lstm)
    }

    #[test]
    fn forward_shapes() {
        let (ps, lstm) = setup();
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::rand_normal(
            &[2, 5, 3],
            0.0,
            1.0,
            &mut StdRng::seed_from_u64(1),
        ));
        let outs = lstm.forward_seq(&ps, &mut tape, x);
        assert_eq!(outs.len(), 5);
        assert_eq!(tape.shape(outs[4]), &[2, 4]);
    }

    #[test]
    fn param_count_is_4_gates() {
        let (ps, _) = setup();
        // 4 gates × (in·h + h·h + h) = 4 × (12 + 16 + 4) = 128
        assert_eq!(ps.num_scalars(), 128);
    }

    #[test]
    fn hidden_state_bounded_by_one() {
        let (ps, lstm) = setup();
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::rand_normal(
            &[2, 8, 3],
            0.0,
            4.0,
            &mut StdRng::seed_from_u64(2),
        ));
        let outs = lstm.forward_seq(&ps, &mut tape, x);
        for &o in &outs {
            assert!(tape.value(o).data().iter().all(|&v| v.abs() <= 1.0));
        }
    }

    #[test]
    fn gradients_reach_all_params() {
        let (ps, lstm) = setup();
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::rand_normal(
            &[2, 4, 3],
            0.0,
            1.0,
            &mut StdRng::seed_from_u64(3),
        ));
        let outs = lstm.forward_seq(&ps, &mut tape, x);
        let last = *outs.last().unwrap();
        let sq = tape.square(last);
        let loss = tape.sum_all(sq);
        let grads = tape.backward(loss);
        for p in ps.iter() {
            assert!(grads.param(p.id).is_some(), "no grad for {}", p.name);
        }
    }
}
