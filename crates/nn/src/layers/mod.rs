//! Layers: parameter-holding building blocks with tape-recording forwards.

pub mod attention;
pub mod dense;
pub mod dropout;
pub mod gru;
pub mod lstm;
pub mod positional;
