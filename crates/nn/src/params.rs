//! The parameter store: owns every trainable tensor in a model.

use elda_autodiff::{ParamId, Tape, Var};
use elda_tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Read-only snapshot of one parameter.
#[derive(Debug)]
pub struct ParamView<'a> {
    /// Stable id used on tapes and in gradient maps.
    pub id: ParamId,
    /// Dotted human-readable name (e.g. `"elda.embed.va"`).
    pub name: &'a str,
    /// Current value.
    pub value: &'a Tensor,
}

#[derive(Serialize, Deserialize)]
struct ParamRecord {
    name: String,
    shape: Vec<usize>,
    data: Vec<f32>,
}

/// Owns the trainable tensors of a model and hands out [`ParamId`]s.
///
/// ```
/// use elda_nn::ParamStore;
/// use elda_tensor::Tensor;
/// let mut ps = ParamStore::new();
/// let w = ps.register("layer.w", Tensor::zeros(&[3, 2]));
/// assert_eq!(ps.num_scalars(), 6);
/// assert_eq!(ps.by_name("layer.w").unwrap().id, w);
/// ```
///
/// Layers register parameters once at construction and bind them onto tapes
/// during forward passes. The store is read-only during a forward/backward
/// pass, which is what lets the trainer differentiate batch shards on
/// separate threads.
#[derive(Default)]
pub struct ParamStore {
    names: Vec<String>,
    values: Vec<Tensor>,
    by_name: HashMap<String, usize>,
}

impl ParamStore {
    /// An empty store.
    pub fn new() -> Self {
        ParamStore::default()
    }

    /// Registers a new parameter and returns its id.
    ///
    /// # Panics
    /// Panics when `name` is already registered — parameter names are the
    /// checkpoint schema and must be unique.
    pub fn register(&mut self, name: &str, value: Tensor) -> ParamId {
        assert!(
            !self.by_name.contains_key(name),
            "parameter name {name:?} registered twice"
        );
        let idx = self.values.len();
        self.names.push(name.to_string());
        self.values.push(value);
        self.by_name.insert(name.to_string(), idx);
        ParamId(idx as u64)
    }

    /// Current value of a parameter.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.values[id.0 as usize]
    }

    /// Mutable value (used by optimizers and checkpoint loading).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.values[id.0 as usize]
    }

    /// Looks a parameter up by name.
    pub fn by_name(&self, name: &str) -> Option<ParamView<'_>> {
        self.by_name.get(name).map(|&idx| ParamView {
            id: ParamId(idx as u64),
            name: &self.names[idx],
            value: &self.values[idx],
        })
    }

    /// Binds parameter `id` onto `tape`, returning its leaf [`Var`].
    pub fn bind(&self, tape: &mut Tape, id: ParamId) -> Var {
        tape.param(id, self.value(id))
    }

    /// Iterates over all parameters.
    pub fn iter(&self) -> impl Iterator<Item = ParamView<'_>> {
        self.values
            .iter()
            .enumerate()
            .map(|(idx, value)| ParamView {
                id: ParamId(idx as u64),
                name: &self.names[idx],
                value,
            })
    }

    /// Number of registered parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no parameter is registered.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total number of trainable scalars — the paper's "# of param"
    /// column in Table III.
    pub fn num_scalars(&self) -> usize {
        self.values.iter().map(Tensor::len).sum()
    }

    /// Serializes all parameters to a JSON checkpoint string.
    pub fn to_json(&self) -> String {
        let records: Vec<ParamRecord> = self
            .iter()
            .map(|p| ParamRecord {
                name: p.name.to_string(),
                shape: p.value.shape().to_vec(),
                data: p.value.data().to_vec(),
            })
            .collect();
        serde_json::to_string(&records).expect("checkpoint serialization")
    }

    /// Restores parameter values from [`ParamStore::to_json`] output.
    ///
    /// Matching is by name; shapes must agree. Returns an error string on
    /// unknown names, missing names or shape mismatches, leaving the store
    /// partially updated only on success (validation happens first).
    pub fn load_json(&mut self, json: &str) -> Result<(), String> {
        self.load_json_impl(json, false)
    }

    /// Like [`ParamStore::load_json`], but additionally rejects checkpoints
    /// containing NaN/Inf values. Durable-checkpoint resume and model-file
    /// loading go through this path — silently training from poisoned
    /// weights is the failure mode the fault-tolerance layer exists to
    /// prevent. (The plain loader stays lenient: the trainer's in-memory
    /// best-epoch restore must work even for runs that later diverged.)
    pub fn load_json_strict(&mut self, json: &str) -> Result<(), String> {
        self.load_json_impl(json, true)
    }

    fn load_json_impl(&mut self, json: &str, reject_non_finite: bool) -> Result<(), String> {
        let records: Vec<ParamRecord> =
            serde_json::from_str(json).map_err(|e| format!("checkpoint parse error: {e}"))?;
        // Validate everything before mutating anything.
        let mut updates = Vec::with_capacity(records.len());
        let mut seen = std::collections::HashSet::with_capacity(records.len());
        for rec in &records {
            if !seen.insert(rec.name.as_str()) {
                return Err(format!("checkpoint lists parameter {:?} twice", rec.name));
            }
            let Some(&idx) = self.by_name.get(&rec.name) else {
                return Err(format!("checkpoint has unknown parameter {:?}", rec.name));
            };
            if self.values[idx].shape() != rec.shape.as_slice() {
                return Err(format!(
                    "parameter {:?} shape mismatch: store {:?} vs checkpoint {:?}",
                    rec.name,
                    self.values[idx].shape(),
                    rec.shape
                ));
            }
            if reject_non_finite {
                let bad = rec.data.iter().filter(|x| !x.is_finite()).count();
                if bad > 0 {
                    return Err(format!(
                        "parameter {:?} contains {bad} non-finite value(s) — \
                         refusing to load NaN/Inf weights",
                        rec.name
                    ));
                }
            }
            let t = Tensor::try_from_vec(rec.data.clone(), &rec.shape)
                .map_err(|e| format!("parameter {:?}: {e}", rec.name))?;
            updates.push((idx, t));
        }
        if records.len() != self.values.len() {
            return Err(format!(
                "checkpoint has {} parameters, store has {}",
                records.len(),
                self.values.len()
            ));
        }
        for (idx, t) in updates {
            self.values[idx] = t;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut ps = ParamStore::new();
        let id = ps.register("w", Tensor::ones(&[2, 2]));
        assert_eq!(ps.value(id).len(), 4);
        assert_eq!(ps.by_name("w").unwrap().id, id);
        assert!(ps.by_name("nope").is_none());
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_names_rejected() {
        let mut ps = ParamStore::new();
        ps.register("w", Tensor::ones(&[1]));
        ps.register("w", Tensor::ones(&[1]));
    }

    #[test]
    fn num_scalars_counts_elements() {
        let mut ps = ParamStore::new();
        ps.register("a", Tensor::ones(&[3, 4]));
        ps.register("b", Tensor::ones(&[5]));
        assert_eq!(ps.num_scalars(), 17);
    }

    #[test]
    fn checkpoint_roundtrip() {
        let mut ps = ParamStore::new();
        let id = ps.register("w", Tensor::from_vec(vec![1.0, 2.0], &[2]));
        ps.register("b", Tensor::zeros(&[1]));
        let json = ps.to_json();
        *ps.value_mut(id) = Tensor::zeros(&[2]);
        ps.load_json(&json).unwrap();
        assert_eq!(ps.value(id).data(), &[1.0, 2.0]);
    }

    #[test]
    fn checkpoint_rejects_shape_mismatch() {
        let mut a = ParamStore::new();
        a.register("w", Tensor::ones(&[2]));
        let json = a.to_json();
        let mut b = ParamStore::new();
        b.register("w", Tensor::ones(&[3]));
        assert!(b.load_json(&json).is_err());
    }

    #[test]
    fn checkpoint_rejects_missing_params() {
        let mut a = ParamStore::new();
        a.register("w", Tensor::ones(&[2]));
        let json = a.to_json();
        let mut b = ParamStore::new();
        b.register("w", Tensor::ones(&[2]));
        b.register("extra", Tensor::ones(&[1]));
        assert!(b.load_json(&json).is_err());
    }

    #[test]
    fn strict_load_rejects_non_finite_values() {
        // 1e39 overflows f32 to +Inf during deserialization; the lenient
        // loader accepts it (in-memory best-epoch restore must not fail on
        // a diverged run), the strict one refuses with a clear message.
        let json = r#"[{"name":"w","shape":[1],"data":[1e39]}]"#;
        let mut ps = ParamStore::new();
        let id = ps.register("w", Tensor::zeros(&[1]));
        let err = ps.load_json_strict(json).unwrap_err();
        assert!(err.contains("non-finite"), "{err}");
        assert_eq!(ps.value(id).data(), &[0.0], "store untouched on error");
        ps.load_json(json).unwrap();
        assert!(ps.value(id).data()[0].is_infinite());
    }

    #[test]
    fn bind_reuses_leaf() {
        let mut ps = ParamStore::new();
        let id = ps.register("w", Tensor::ones(&[2]));
        let mut tape = Tape::new();
        let v1 = ps.bind(&mut tape, id);
        let v2 = ps.bind(&mut tape, id);
        assert_eq!(v1, v2);
    }
}
