//! Deterministic fault injection for exercising the fault-tolerance layer.
//!
//! A [`FaultPlan`] describes *where* to break a training run: poison the
//! gradients of one epoch with NaN, panic or hard-abort mid-epoch, or
//! truncate every checkpoint right after it is written. Plans are
//! installed process-globally — from tests via [`install`], or from the
//! CLI via `--fault SPEC` / the `ELDA_FAULTS` environment variable — and
//! the trainer calls the `maybe_*` hooks at the matching points.
//!
//! The surface is test-only by intent but compiled unconditionally: with
//! no plan installed every hook is a single relaxed atomic load, so the
//! hot path pays nothing and release binaries can run the same
//! crash-and-resume drills CI does.
//!
//! Spec grammar (comma-separated, e.g. `"nan_grad@2,abort@3"`):
//!
//! | clause | effect |
//! |---|---|
//! | `nan_grad@K` | first batch of epoch K computes NaN gradients (once) |
//! | `panic@K` | panic after the first batch of epoch K (unwinds) |
//! | `abort@K` | hard process exit (code 134) after the first batch of epoch K |
//! | `truncate_ckpt` | every checkpoint file is truncated after writing |
//!
//! # Serve-side chaos
//!
//! [`ChaosPlan`] is the serving tier's counterpart: it keys faults on
//! the server's *accepted-request sequence number* (the `seq` counter
//! `elda serve` assigns on admission, starting at 0) instead of the
//! epoch, and is installed via `--chaos SPEC` / the `ELDA_CHAOS`
//! environment variable. The scorer workers call the `chaos_*` hooks at
//! the matching points, so worker-panic recovery, deadline expiry,
//! poison quarantine and lost-reply handling are all drill-testable
//! against the release binary the way `ELDA_FAULTS` crash-and-resume
//! drills are.
//!
//! | clause | effect |
//! |---|---|
//! | `panic_worker@req=K` | the worker scoring the batch containing request K panics mid-score (once — a *transient* crash) |
//! | `slow_score@K:MS` | the batch containing request K sleeps MS ms before scoring (once) |
//! | `poison_scores@K` | request K's score becomes NaN (every time — a *deterministic* poison input) |
//! | `drop_reply@K` | the reply to request K is never written (once — a lost write) |

use elda_autodiff::ParamId;
use elda_tensor::Tensor;
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// A deterministic schedule of injected faults.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Replace the gradients of the first batch of this epoch with NaN
    /// (fires once per installed plan).
    pub nan_grad_epoch: Option<usize>,
    /// Panic (unwinding — catchable in-process) after the first batch of
    /// this epoch.
    pub panic_epoch: Option<usize>,
    /// Hard process exit with code 134 after the first batch of this
    /// epoch, simulating an OOM-kill mid-epoch.
    pub abort_epoch: Option<usize>,
    /// Truncate every checkpoint file immediately after it is written.
    pub truncate_checkpoints: bool,
}

impl FaultPlan {
    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        *self == FaultPlan::default()
    }

    /// Parses the spec grammar described in the module docs.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for clause in spec.split(',').map(str::trim).filter(|c| !c.is_empty()) {
            if clause == "truncate_ckpt" {
                plan.truncate_checkpoints = true;
                continue;
            }
            let (kind, epoch) = clause
                .split_once('@')
                .ok_or_else(|| format!("fault clause {clause:?}: expected KIND@EPOCH"))?;
            let epoch: usize = epoch
                .parse()
                .map_err(|_| format!("fault clause {clause:?}: bad epoch {epoch:?}"))?;
            match kind {
                "nan_grad" => plan.nan_grad_epoch = Some(epoch),
                "panic" => plan.panic_epoch = Some(epoch),
                "abort" => plan.abort_epoch = Some(epoch),
                other => return Err(format!("unknown fault kind {other:?}")),
            }
        }
        Ok(plan)
    }
}

/// Fast-path gate: hooks return immediately while this is false.
static ACTIVE: AtomicBool = AtomicBool::new(false);

struct Armed {
    plan: FaultPlan,
    nan_fired: bool,
}

static ARMED: Mutex<Option<Armed>> = Mutex::new(None);

/// Installs `plan` process-globally (replacing any previous plan). An
/// empty plan is equivalent to [`clear`].
pub fn install(plan: FaultPlan) {
    let mut armed = ARMED.lock().expect("fault plan lock");
    ACTIVE.store(!plan.is_empty(), Ordering::Release);
    *armed = Some(Armed {
        plan,
        nan_fired: false,
    });
}

/// Removes the installed plan; all hooks become no-ops again.
pub fn clear() {
    let mut armed = ARMED.lock().expect("fault plan lock");
    ACTIVE.store(false, Ordering::Release);
    *armed = None;
}

/// Installs a plan from the `ELDA_FAULTS` environment variable if set.
/// Returns the parsed plan (`None` when the variable is unset).
pub fn install_from_env() -> Result<Option<FaultPlan>, String> {
    match std::env::var("ELDA_FAULTS") {
        Ok(spec) if !spec.trim().is_empty() => {
            let plan = FaultPlan::parse(&spec).map_err(|e| format!("ELDA_FAULTS: {e}"))?;
            install(plan.clone());
            Ok(Some(plan))
        }
        _ => Ok(None),
    }
}

fn with_plan<R>(f: impl FnOnce(&mut Armed) -> R) -> Option<R> {
    if !ACTIVE.load(Ordering::Acquire) {
        return None;
    }
    ARMED.lock().expect("fault plan lock").as_mut().map(f)
}

/// Trainer hook, called at the top of every batch. Fires the `panic@K` /
/// `abort@K` faults on the *second* batch of epoch K, so at least one
/// optimizer step has happened and the crash is genuinely mid-epoch.
pub fn maybe_crash(epoch: usize, batch: usize) {
    let crash = with_plan(|a| {
        if batch != 1 {
            return (false, false);
        }
        (
            a.plan.panic_epoch == Some(epoch),
            a.plan.abort_epoch == Some(epoch),
        )
    });
    match crash {
        Some((true, _)) => panic!("fault injection: panic at epoch {epoch}, batch {batch}"),
        Some((_, true)) => {
            eprintln!("fault injection: aborting at epoch {epoch}, batch {batch}");
            std::process::exit(134);
        }
        _ => {}
    }
}

/// Trainer hook, called on each batch's freshly computed gradients.
/// Poisons every gradient's first element with NaN on the first batch of
/// the configured epoch (once), returning true when it fired.
pub fn maybe_corrupt_grads(epoch: usize, grads: &mut HashMap<ParamId, Tensor>) -> bool {
    with_plan(|a| {
        if a.nan_fired || a.plan.nan_grad_epoch != Some(epoch) {
            return false;
        }
        a.nan_fired = true;
        for g in grads.values_mut() {
            if let Some(x) = g.data_mut().first_mut() {
                *x = f32::NAN;
            }
        }
        true
    })
    .unwrap_or(false)
}

/// Checkpoint hook: truncates the just-written file to half its length
/// when the plan asks for checkpoint corruption.
pub fn maybe_truncate_checkpoint(path: &Path) {
    let truncate = with_plan(|a| a.plan.truncate_checkpoints).unwrap_or(false);
    if truncate {
        if let Ok(text) = std::fs::read_to_string(path) {
            let _ = std::fs::write(path, &text[..text.len() / 2]);
        }
    }
}

/// A deterministic schedule of injected *serving* faults, keyed on the
/// server's accepted-request sequence number (see the module docs).
///
/// Transient faults (`panic_worker`, `slow_score`, `drop_reply`) fire
/// once per installed plan — they model one-off infrastructure failures
/// that a retry survives. `poison_scores` fires every time request K is
/// scored — it models an *input* that deterministically breaks the
/// model, which is exactly what the quarantine bisection must isolate.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosPlan {
    /// `panic_worker@req=K`: the worker scoring the batch containing
    /// accepted request K panics mid-score (fires once).
    pub panic_worker_req: Option<u64>,
    /// `slow_score@K:MS`: the batch containing request K sleeps MS
    /// milliseconds before scoring (fires once).
    pub slow_score: Option<(u64, u64)>,
    /// `poison_scores@K`: request K's score is replaced with NaN (fires
    /// every time K is scored, including on bisection retries).
    pub poison_scores_req: Option<u64>,
    /// `drop_reply@K`: the reply to request K is silently never written
    /// (fires once).
    pub drop_reply_req: Option<u64>,
}

impl ChaosPlan {
    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        *self == ChaosPlan::default()
    }

    /// Parses the serve-side spec grammar described in the module docs
    /// (comma-separated clauses, e.g.
    /// `"panic_worker@req=3,slow_score@7:250"`).
    pub fn parse(spec: &str) -> Result<ChaosPlan, String> {
        fn req(clause: &str, v: &str) -> Result<u64, String> {
            v.parse()
                .map_err(|_| format!("chaos clause {clause:?}: bad request number {v:?}"))
        }
        let mut plan = ChaosPlan::default();
        for clause in spec.split(',').map(str::trim).filter(|c| !c.is_empty()) {
            let (kind, rest) = clause
                .split_once('@')
                .ok_or_else(|| format!("chaos clause {clause:?}: expected KIND@..."))?;
            match kind {
                "panic_worker" => {
                    let k = rest.strip_prefix("req=").ok_or_else(|| {
                        format!("chaos clause {clause:?}: expected panic_worker@req=K")
                    })?;
                    plan.panic_worker_req = Some(req(clause, k)?);
                }
                "slow_score" => {
                    let (k, ms) = rest.split_once(':').ok_or_else(|| {
                        format!("chaos clause {clause:?}: expected slow_score@K:MS")
                    })?;
                    let ms: u64 = ms
                        .parse()
                        .map_err(|_| format!("chaos clause {clause:?}: bad duration {ms:?}"))?;
                    plan.slow_score = Some((req(clause, k)?, ms));
                }
                "poison_scores" => plan.poison_scores_req = Some(req(clause, rest)?),
                "drop_reply" => plan.drop_reply_req = Some(req(clause, rest)?),
                other => return Err(format!("unknown chaos kind {other:?}")),
            }
        }
        Ok(plan)
    }
}

/// Fast-path gate for the serve-side hooks, independent of the training
/// [`FaultPlan`] gate so the two drill families never interfere.
static CHAOS_ACTIVE: AtomicBool = AtomicBool::new(false);

struct ArmedChaos {
    plan: ChaosPlan,
    panic_fired: bool,
    slow_fired: bool,
    drop_fired: bool,
}

static CHAOS_ARMED: Mutex<Option<ArmedChaos>> = Mutex::new(None);

/// Installs `plan` process-globally (replacing any previous chaos plan).
/// An empty plan is equivalent to [`clear_chaos`].
pub fn install_chaos(plan: ChaosPlan) {
    let mut armed = CHAOS_ARMED.lock().expect("chaos plan lock");
    CHAOS_ACTIVE.store(!plan.is_empty(), Ordering::Release);
    *armed = Some(ArmedChaos {
        plan,
        panic_fired: false,
        slow_fired: false,
        drop_fired: false,
    });
}

/// Removes the installed chaos plan; all `chaos_*` hooks become no-ops.
pub fn clear_chaos() {
    let mut armed = CHAOS_ARMED.lock().expect("chaos plan lock");
    CHAOS_ACTIVE.store(false, Ordering::Release);
    *armed = None;
}

/// Installs a chaos plan from the `ELDA_CHAOS` environment variable if
/// set. Returns the parsed plan (`None` when the variable is unset).
pub fn install_chaos_from_env() -> Result<Option<ChaosPlan>, String> {
    match std::env::var("ELDA_CHAOS") {
        Ok(spec) if !spec.trim().is_empty() => {
            let plan = ChaosPlan::parse(&spec).map_err(|e| format!("ELDA_CHAOS: {e}"))?;
            install_chaos(plan.clone());
            Ok(Some(plan))
        }
        _ => Ok(None),
    }
}

fn with_chaos<R>(f: impl FnOnce(&mut ArmedChaos) -> R) -> Option<R> {
    if !CHAOS_ACTIVE.load(Ordering::Acquire) {
        return None;
    }
    CHAOS_ARMED.lock().expect("chaos plan lock").as_mut().map(f)
}

/// Scorer-worker hook, called at the top of every batch forward with the
/// batch's accepted-request sequence numbers. Panics (unwinding —
/// catchable by the worker's supervision wrapper) when the armed plan's
/// `panic_worker` request is in the batch; fires once, so bisection
/// retries after the caught panic score clean.
pub fn chaos_panic_worker(seqs: &[u64]) {
    let fire = with_chaos(|a| match a.plan.panic_worker_req {
        Some(k) if !a.panic_fired && seqs.contains(&k) => {
            a.panic_fired = true;
            true
        }
        _ => false,
    })
    .unwrap_or(false);
    if fire {
        panic!("chaos injection: worker panic (batch contains request {seqs:?})");
    }
}

/// Scorer-worker hook: how long the batch containing the armed
/// `slow_score` request should stall before scoring (fires once).
pub fn chaos_slow_score(seqs: &[u64]) -> Option<std::time::Duration> {
    with_chaos(|a| match a.plan.slow_score {
        Some((k, ms)) if !a.slow_fired && seqs.contains(&k) => {
            a.slow_fired = true;
            Some(std::time::Duration::from_millis(ms))
        }
        _ => None,
    })
    .flatten()
}

/// Scorer-worker hook: true when request `seq`'s freshly computed score
/// must be replaced with NaN. Deterministic (fires on every scoring of
/// `seq`), so the quarantine bisection can isolate it like a real poison
/// input.
pub fn chaos_poison_score(seq: u64) -> bool {
    with_chaos(|a| a.plan.poison_scores_req == Some(seq)).unwrap_or(false)
}

/// Reply-path hook: true when the reply to request `seq` must be
/// dropped instead of written (fires once).
pub fn chaos_drop_reply(seq: u64) -> bool {
    with_chaos(|a| match a.plan.drop_reply_req {
        Some(k) if !a.drop_fired && k == seq => {
            a.drop_fired = true;
            true
        }
        _ => false,
    })
    .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_grammar_roundtrips_and_rejects_garbage() {
        let plan = FaultPlan::parse("nan_grad@2, abort@3,truncate_ckpt").unwrap();
        assert_eq!(plan.nan_grad_epoch, Some(2));
        assert_eq!(plan.abort_epoch, Some(3));
        assert!(plan.truncate_checkpoints);
        assert!(plan.panic_epoch.is_none());
        assert!(!plan.is_empty());

        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse("nan_grad").is_err());
        assert!(FaultPlan::parse("nan_grad@x").is_err());
        assert!(FaultPlan::parse("meteor@1").is_err());
    }

    #[test]
    fn chaos_spec_grammar_roundtrips_and_rejects_garbage() {
        let plan =
            ChaosPlan::parse("panic_worker@req=3, slow_score@7:250,poison_scores@9,drop_reply@1")
                .unwrap();
        assert_eq!(plan.panic_worker_req, Some(3));
        assert_eq!(plan.slow_score, Some((7, 250)));
        assert_eq!(plan.poison_scores_req, Some(9));
        assert_eq!(plan.drop_reply_req, Some(1));
        assert!(!plan.is_empty());

        assert!(ChaosPlan::parse("").unwrap().is_empty());
        assert!(ChaosPlan::parse("panic_worker@3").is_err(), "needs req=");
        assert!(ChaosPlan::parse("panic_worker@req=x").is_err());
        assert!(ChaosPlan::parse("slow_score@3").is_err(), "needs :MS");
        assert!(ChaosPlan::parse("slow_score@3:fast").is_err());
        assert!(ChaosPlan::parse("poison_scores").is_err());
        assert!(ChaosPlan::parse("meteor@1").is_err());
    }

    // Installation/firing tests live with the trainer tests (which already
    // serialize on the process-global state); here we only cover the pure
    // parts to keep this module's globals quiet under parallel testing.
    // ChaosPlan firing semantics (once vs every-time) are exercised by the
    // serve-tier chaos drills in crates/cli/tests/chaos_drills.rs.
}
