//! Deterministic fault injection for exercising the fault-tolerance layer.
//!
//! A [`FaultPlan`] describes *where* to break a training run: poison the
//! gradients of one epoch with NaN, panic or hard-abort mid-epoch, or
//! truncate every checkpoint right after it is written. Plans are
//! installed process-globally — from tests via [`install`], or from the
//! CLI via `--fault SPEC` / the `ELDA_FAULTS` environment variable — and
//! the trainer calls the `maybe_*` hooks at the matching points.
//!
//! The surface is test-only by intent but compiled unconditionally: with
//! no plan installed every hook is a single relaxed atomic load, so the
//! hot path pays nothing and release binaries can run the same
//! crash-and-resume drills CI does.
//!
//! Spec grammar (comma-separated, e.g. `"nan_grad@2,abort@3"`):
//!
//! | clause | effect |
//! |---|---|
//! | `nan_grad@K` | first batch of epoch K computes NaN gradients (once) |
//! | `panic@K` | panic after the first batch of epoch K (unwinds) |
//! | `abort@K` | hard process exit (code 134) after the first batch of epoch K |
//! | `truncate_ckpt` | every checkpoint file is truncated after writing |

use elda_autodiff::ParamId;
use elda_tensor::Tensor;
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// A deterministic schedule of injected faults.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Replace the gradients of the first batch of this epoch with NaN
    /// (fires once per installed plan).
    pub nan_grad_epoch: Option<usize>,
    /// Panic (unwinding — catchable in-process) after the first batch of
    /// this epoch.
    pub panic_epoch: Option<usize>,
    /// Hard process exit with code 134 after the first batch of this
    /// epoch, simulating an OOM-kill mid-epoch.
    pub abort_epoch: Option<usize>,
    /// Truncate every checkpoint file immediately after it is written.
    pub truncate_checkpoints: bool,
}

impl FaultPlan {
    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        *self == FaultPlan::default()
    }

    /// Parses the spec grammar described in the module docs.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for clause in spec.split(',').map(str::trim).filter(|c| !c.is_empty()) {
            if clause == "truncate_ckpt" {
                plan.truncate_checkpoints = true;
                continue;
            }
            let (kind, epoch) = clause
                .split_once('@')
                .ok_or_else(|| format!("fault clause {clause:?}: expected KIND@EPOCH"))?;
            let epoch: usize = epoch
                .parse()
                .map_err(|_| format!("fault clause {clause:?}: bad epoch {epoch:?}"))?;
            match kind {
                "nan_grad" => plan.nan_grad_epoch = Some(epoch),
                "panic" => plan.panic_epoch = Some(epoch),
                "abort" => plan.abort_epoch = Some(epoch),
                other => return Err(format!("unknown fault kind {other:?}")),
            }
        }
        Ok(plan)
    }
}

/// Fast-path gate: hooks return immediately while this is false.
static ACTIVE: AtomicBool = AtomicBool::new(false);

struct Armed {
    plan: FaultPlan,
    nan_fired: bool,
}

static ARMED: Mutex<Option<Armed>> = Mutex::new(None);

/// Installs `plan` process-globally (replacing any previous plan). An
/// empty plan is equivalent to [`clear`].
pub fn install(plan: FaultPlan) {
    let mut armed = ARMED.lock().expect("fault plan lock");
    ACTIVE.store(!plan.is_empty(), Ordering::Release);
    *armed = Some(Armed {
        plan,
        nan_fired: false,
    });
}

/// Removes the installed plan; all hooks become no-ops again.
pub fn clear() {
    let mut armed = ARMED.lock().expect("fault plan lock");
    ACTIVE.store(false, Ordering::Release);
    *armed = None;
}

/// Installs a plan from the `ELDA_FAULTS` environment variable if set.
/// Returns the parsed plan (`None` when the variable is unset).
pub fn install_from_env() -> Result<Option<FaultPlan>, String> {
    match std::env::var("ELDA_FAULTS") {
        Ok(spec) if !spec.trim().is_empty() => {
            let plan = FaultPlan::parse(&spec).map_err(|e| format!("ELDA_FAULTS: {e}"))?;
            install(plan.clone());
            Ok(Some(plan))
        }
        _ => Ok(None),
    }
}

fn with_plan<R>(f: impl FnOnce(&mut Armed) -> R) -> Option<R> {
    if !ACTIVE.load(Ordering::Acquire) {
        return None;
    }
    ARMED.lock().expect("fault plan lock").as_mut().map(f)
}

/// Trainer hook, called at the top of every batch. Fires the `panic@K` /
/// `abort@K` faults on the *second* batch of epoch K, so at least one
/// optimizer step has happened and the crash is genuinely mid-epoch.
pub fn maybe_crash(epoch: usize, batch: usize) {
    let crash = with_plan(|a| {
        if batch != 1 {
            return (false, false);
        }
        (
            a.plan.panic_epoch == Some(epoch),
            a.plan.abort_epoch == Some(epoch),
        )
    });
    match crash {
        Some((true, _)) => panic!("fault injection: panic at epoch {epoch}, batch {batch}"),
        Some((_, true)) => {
            eprintln!("fault injection: aborting at epoch {epoch}, batch {batch}");
            std::process::exit(134);
        }
        _ => {}
    }
}

/// Trainer hook, called on each batch's freshly computed gradients.
/// Poisons every gradient's first element with NaN on the first batch of
/// the configured epoch (once), returning true when it fired.
pub fn maybe_corrupt_grads(epoch: usize, grads: &mut HashMap<ParamId, Tensor>) -> bool {
    with_plan(|a| {
        if a.nan_fired || a.plan.nan_grad_epoch != Some(epoch) {
            return false;
        }
        a.nan_fired = true;
        for g in grads.values_mut() {
            if let Some(x) = g.data_mut().first_mut() {
                *x = f32::NAN;
            }
        }
        true
    })
    .unwrap_or(false)
}

/// Checkpoint hook: truncates the just-written file to half its length
/// when the plan asks for checkpoint corruption.
pub fn maybe_truncate_checkpoint(path: &Path) {
    let truncate = with_plan(|a| a.plan.truncate_checkpoints).unwrap_or(false);
    if truncate {
        if let Ok(text) = std::fs::read_to_string(path) {
            let _ = std::fs::write(path, &text[..text.len() / 2]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_grammar_roundtrips_and_rejects_garbage() {
        let plan = FaultPlan::parse("nan_grad@2, abort@3,truncate_ckpt").unwrap();
        assert_eq!(plan.nan_grad_epoch, Some(2));
        assert_eq!(plan.abort_epoch, Some(3));
        assert!(plan.truncate_checkpoints);
        assert!(plan.panic_epoch.is_none());
        assert!(!plan.is_empty());

        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse("nan_grad").is_err());
        assert!(FaultPlan::parse("nan_grad@x").is_err());
        assert!(FaultPlan::parse("meteor@1").is_err());
    }

    // Installation/firing tests live with the trainer tests (which already
    // serialize on the process-global state); here we only cover the pure
    // parts to keep this module's globals quiet under parallel testing.
}
