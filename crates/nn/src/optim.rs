//! Optimizers: SGD (with momentum) and Adam, plus global-norm clipping and
//! serializable optimizer state for checkpoint/resume.

use crate::params::ParamStore;
use elda_autodiff::ParamId;
use elda_tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One per-parameter moment buffer inside an [`OptimizerState`]. Buffers
/// are keyed by parameter *name* (the checkpoint schema), not [`ParamId`],
/// so state survives a process restart where ids are reassigned.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlotRecord {
    /// Which buffer: `"velocity"` (SGD), `"m"` or `"v"` (Adam).
    pub slot: String,
    /// Name of the parameter this buffer belongs to.
    pub param: String,
    /// Buffer shape (must match the parameter's shape).
    pub shape: Vec<usize>,
    /// Buffer contents.
    pub data: Vec<f32>,
}

/// Serializable snapshot of an optimizer's internal state — everything a
/// resumed run needs to continue bit-for-bit: hyperparameters (including a
/// learning rate possibly lowered by recovery backoff), the step counter
/// driving Adam's bias correction, and all moment buffers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimizerState {
    /// Optimizer family: `"sgd"` or `"adam"`.
    pub kind: String,
    /// Current learning rate.
    pub lr: f32,
    /// Update steps taken so far (Adam bias correction; 0 for SGD).
    pub step: u64,
    /// SGD momentum coefficient (0 when unused).
    pub momentum: f32,
    /// Adam β₁ (0 for SGD).
    pub beta1: f32,
    /// Adam β₂ (0 for SGD).
    pub beta2: f32,
    /// Adam ε (0 for SGD).
    pub eps: f32,
    /// Decoupled weight decay.
    pub weight_decay: f32,
    /// Moment buffers, keyed by parameter name.
    pub slots: Vec<SlotRecord>,
}

impl OptimizerState {
    /// Validates `slots` against `ps` and rebuilds the id-keyed buffer map
    /// for slot `slot`. Rejects unknown parameters, shape mismatches and
    /// non-finite buffer contents — resuming from poisoned moments would
    /// silently corrupt every subsequent step.
    fn slot_map(&self, ps: &ParamStore, slot: &str) -> Result<HashMap<ParamId, Tensor>, String> {
        let mut out = HashMap::new();
        for rec in self.slots.iter().filter(|r| r.slot == slot) {
            let Some(view) = ps.by_name(&rec.param) else {
                return Err(format!(
                    "optimizer state references unknown parameter {:?}",
                    rec.param
                ));
            };
            if view.value.shape() != rec.shape.as_slice() {
                return Err(format!(
                    "optimizer {slot:?} buffer for {:?} has shape {:?}, parameter is {:?}",
                    rec.param,
                    rec.shape,
                    view.value.shape()
                ));
            }
            let bad = rec.data.iter().filter(|x| !x.is_finite()).count();
            if bad > 0 {
                return Err(format!(
                    "optimizer {slot:?} buffer for {:?} contains {bad} non-finite value(s)",
                    rec.param
                ));
            }
            let t = Tensor::try_from_vec(rec.data.clone(), &rec.shape)
                .map_err(|e| format!("optimizer {slot:?} buffer for {:?}: {e}", rec.param))?;
            out.insert(view.id, t);
        }
        Ok(out)
    }
}

/// Serializes an id-keyed buffer map as named slot records, sorted by
/// parameter name for deterministic output.
fn slots_of(ps: &ParamStore, slot: &str, map: &HashMap<ParamId, Tensor>) -> Vec<SlotRecord> {
    let mut out: Vec<SlotRecord> = ps
        .iter()
        .filter_map(|p| {
            map.get(&p.id).map(|t| SlotRecord {
                slot: slot.to_string(),
                param: p.name.to_string(),
                shape: t.shape().to_vec(),
                data: t.data().to_vec(),
            })
        })
        .collect();
    out.sort_by(|a, b| a.param.cmp(&b.param));
    out
}

/// A first-order optimizer consuming id-keyed gradients.
pub trait Optimizer {
    /// Applies one update step to every parameter present in `grads`.
    fn step(&mut self, ps: &mut ParamStore, grads: &HashMap<ParamId, Tensor>);

    /// The current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (used by schedules and benches).
    fn set_learning_rate(&mut self, lr: f32);

    /// Snapshots the full internal state for checkpointing. Buffers are
    /// keyed by parameter name via `ps`.
    fn export_state(&self, ps: &ParamStore) -> OptimizerState;

    /// Restores a snapshot produced by [`Optimizer::export_state`].
    /// Validates the optimizer kind, buffer shapes and finiteness before
    /// mutating anything; afterwards the optimizer continues exactly where
    /// the exporting instance left off.
    fn import_state(&mut self, ps: &ParamStore, state: &OptimizerState) -> Result<(), String>;
}

/// Stochastic gradient descent with optional classical momentum and
/// decoupled weight decay.
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: HashMap<ParamId, Tensor>,
}

impl Sgd {
    /// Plain SGD.
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
            velocity: HashMap::new(),
        }
    }

    /// SGD with momentum `mu` (`v ← mu·v + g; w ← w − lr·v`).
    pub fn with_momentum(lr: f32, mu: f32) -> Self {
        Sgd {
            lr,
            momentum: mu,
            weight_decay: 0.0,
            velocity: HashMap::new(),
        }
    }

    /// Adds decoupled weight decay (`w ← w − lr·wd·w` per step).
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, ps: &mut ParamStore, grads: &HashMap<ParamId, Tensor>) {
        for (&id, g) in grads {
            if self.weight_decay > 0.0 {
                let decay = 1.0 - self.lr * self.weight_decay;
                for w in ps.value_mut(id).data_mut() {
                    *w *= decay;
                }
            }
            if self.momentum > 0.0 {
                let v = self
                    .velocity
                    .entry(id)
                    .or_insert_with(|| Tensor::zeros(g.shape()));
                for (v, &g) in v.data_mut().iter_mut().zip(g.data()) {
                    *v = self.momentum * *v + g;
                }
                let v = self.velocity[&id].clone();
                ps.value_mut(id).axpy_assign(-self.lr, &v);
            } else {
                ps.value_mut(id).axpy_assign(-self.lr, g);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn export_state(&self, ps: &ParamStore) -> OptimizerState {
        OptimizerState {
            kind: "sgd".to_string(),
            lr: self.lr,
            step: 0,
            momentum: self.momentum,
            beta1: 0.0,
            beta2: 0.0,
            eps: 0.0,
            weight_decay: self.weight_decay,
            slots: slots_of(ps, "velocity", &self.velocity),
        }
    }

    fn import_state(&mut self, ps: &ParamStore, state: &OptimizerState) -> Result<(), String> {
        if state.kind != "sgd" {
            return Err(format!(
                "optimizer state is {:?}, this optimizer is \"sgd\"",
                state.kind
            ));
        }
        let velocity = state.slot_map(ps, "velocity")?;
        self.lr = state.lr;
        self.momentum = state.momentum;
        self.weight_decay = state.weight_decay;
        self.velocity = velocity;
        Ok(())
    }
}

/// Adam (Kingma & Ba 2015) with bias correction — the optimizer family the
/// paper trains with (initial learning rate 1e-3).
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    m: HashMap<ParamId, Tensor>,
    v: HashMap<ParamId, Tensor>,
}

impl Adam {
    /// Adam with the standard β₁=0.9, β₂=0.999, ε=1e-8.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            m: HashMap::new(),
            v: HashMap::new(),
        }
    }

    /// Fully parameterized constructor.
    pub fn with_betas(lr: f32, beta1: f32, beta2: f32, eps: f32) -> Self {
        Adam {
            weight_decay: 0.0,
            ..Adam::new(lr)
        }
        .rebetas(beta1, beta2, eps)
    }

    fn rebetas(mut self, beta1: f32, beta2: f32, eps: f32) -> Self {
        self.beta1 = beta1;
        self.beta2 = beta2;
        self.eps = eps;
        self
    }

    /// Adds decoupled (AdamW-style) weight decay.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }
}

impl Optimizer for Adam {
    fn step(&mut self, ps: &mut ParamStore, grads: &HashMap<ParamId, Tensor>) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (&id, g) in grads {
            if self.weight_decay > 0.0 {
                let decay = 1.0 - self.lr * self.weight_decay;
                for w in ps.value_mut(id).data_mut() {
                    *w *= decay;
                }
            }
            let m = self.m.entry(id).or_insert_with(|| Tensor::zeros(g.shape()));
            let v = self.v.entry(id).or_insert_with(|| Tensor::zeros(g.shape()));
            let w = ps.value_mut(id);
            for ((w, (&gk, mk)), vk) in w
                .data_mut()
                .iter_mut()
                .zip(g.data().iter().zip(m.data_mut()))
                .zip(v.data_mut())
            {
                *mk = self.beta1 * *mk + (1.0 - self.beta1) * gk;
                *vk = self.beta2 * *vk + (1.0 - self.beta2) * gk * gk;
                let m_hat = *mk / bc1;
                let v_hat = *vk / bc2;
                *w -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn export_state(&self, ps: &ParamStore) -> OptimizerState {
        OptimizerState {
            kind: "adam".to_string(),
            lr: self.lr,
            step: self.t,
            momentum: 0.0,
            beta1: self.beta1,
            beta2: self.beta2,
            eps: self.eps,
            weight_decay: self.weight_decay,
            slots: slots_of(ps, "m", &self.m)
                .into_iter()
                .chain(slots_of(ps, "v", &self.v))
                .collect(),
        }
    }

    fn import_state(&mut self, ps: &ParamStore, state: &OptimizerState) -> Result<(), String> {
        if state.kind != "adam" {
            return Err(format!(
                "optimizer state is {:?}, this optimizer is \"adam\"",
                state.kind
            ));
        }
        let m = state.slot_map(ps, "m")?;
        let v = state.slot_map(ps, "v")?;
        self.lr = state.lr;
        self.t = state.step;
        self.beta1 = state.beta1;
        self.beta2 = state.beta2;
        self.eps = state.eps;
        self.weight_decay = state.weight_decay;
        self.m = m;
        self.v = v;
        Ok(())
    }
}

/// Rescales all gradients in place so their global L2 norm is at most
/// `max_norm`. Returns the pre-clip norm.
pub fn clip_global_norm(grads: &mut HashMap<ParamId, Tensor>, max_norm: f32) -> f32 {
    let sq: f64 = grads
        .values()
        .map(|g| g.data().iter().map(|&x| (x * x) as f64).sum::<f64>())
        .sum();
    let norm = (sq as f32).sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for g in grads.values_mut() {
            for x in g.data_mut() {
                *x *= scale;
            }
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizes f(w) = (w - 3)^2 and checks convergence.
    fn quadratic_descent(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        let mut ps = ParamStore::new();
        let id = ps.register("w", Tensor::zeros(&[1]));
        for _ in 0..steps {
            let w = ps.value(id).data()[0];
            let grad = Tensor::from_vec(vec![2.0 * (w - 3.0)], &[1]);
            let mut grads = HashMap::new();
            grads.insert(id, grad);
            opt.step(&mut ps, &grads);
        }
        ps.value(id).data()[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let w = quadratic_descent(&mut Sgd::new(0.1), 100);
        assert!((w - 3.0).abs() < 1e-3, "w = {w}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let w = quadratic_descent(&mut Sgd::with_momentum(0.05, 0.9), 200);
        assert!((w - 3.0).abs() < 1e-2, "w = {w}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let w = quadratic_descent(&mut Adam::new(0.1), 300);
        assert!((w - 3.0).abs() < 1e-2, "w = {w}");
    }

    #[test]
    fn adam_first_step_is_lr_sized() {
        // With bias correction, the very first Adam step ≈ lr in magnitude.
        let mut ps = ParamStore::new();
        let id = ps.register("w", Tensor::zeros(&[1]));
        let mut opt = Adam::new(0.001);
        let mut grads = HashMap::new();
        grads.insert(id, Tensor::from_vec(vec![123.0], &[1]));
        opt.step(&mut ps, &grads);
        let w = ps.value(id).data()[0];
        assert!((w.abs() - 0.001).abs() < 1e-5, "first step {w}");
    }

    #[test]
    fn weight_decay_shrinks_weights_without_gradient_signal() {
        // zero gradient, pure decay: weights must shrink geometrically
        let mut ps = ParamStore::new();
        let id = ps.register("w", Tensor::from_vec(vec![1.0], &[1]));
        let mut opt = Adam::new(0.1).with_weight_decay(0.5);
        let mut grads = HashMap::new();
        grads.insert(id, Tensor::zeros(&[1]));
        for _ in 0..10 {
            opt.step(&mut ps, &grads);
        }
        let w = ps.value(id).data()[0];
        // (1 - 0.1*0.5)^10 = 0.95^10 ≈ 0.5987
        assert!((w - 0.95f32.powi(10)).abs() < 1e-4, "w = {w}");
    }

    #[test]
    fn sgd_weight_decay_composes_with_update() {
        let mut ps = ParamStore::new();
        let id = ps.register("w", Tensor::from_vec(vec![2.0], &[1]));
        let mut opt = Sgd::new(0.1).with_weight_decay(1.0);
        let mut grads = HashMap::new();
        grads.insert(id, Tensor::from_vec(vec![1.0], &[1]));
        opt.step(&mut ps, &grads);
        // decay first: 2.0 * (1 - 0.1) = 1.8; then step: 1.8 - 0.1 = 1.7
        assert!((ps.value(id).data()[0] - 1.7).abs() < 1e-6);
    }

    /// Runs `steps` quadratic-descent steps on a 2-param problem, returning
    /// the store and grads used (deterministic, so two optimizers fed the
    /// same store diverge only through their own state).
    fn descend(ps: &mut ParamStore, opt: &mut dyn Optimizer, steps: usize) {
        let w = ps.by_name("w").unwrap().id;
        let b = ps.by_name("b").unwrap().id;
        for _ in 0..steps {
            let gw = 2.0 * (ps.value(w).data()[0] - 3.0);
            let gb = 2.0 * (ps.value(b).data()[0] + 1.0);
            let mut grads = HashMap::new();
            grads.insert(w, Tensor::from_vec(vec![gw], &[1]));
            grads.insert(b, Tensor::from_vec(vec![gb], &[1]));
            opt.step(ps, &grads);
        }
    }

    fn two_param_store() -> ParamStore {
        let mut ps = ParamStore::new();
        ps.register("w", Tensor::zeros(&[1]));
        ps.register("b", Tensor::zeros(&[1]));
        ps
    }

    #[test]
    fn adam_state_roundtrip_continues_bit_for_bit() {
        // Reference: 10 uninterrupted steps.
        let mut ps_ref = two_param_store();
        let mut opt_ref = Adam::new(0.05).with_weight_decay(0.01);
        descend(&mut ps_ref, &mut opt_ref, 10);

        // Interrupted: 4 steps, export, rebuild a *fresh* optimizer with
        // different hypers, import, 6 more steps.
        let mut ps = two_param_store();
        let mut opt = Adam::new(0.05).with_weight_decay(0.01);
        descend(&mut ps, &mut opt, 4);
        let state = opt.export_state(&ps);
        assert_eq!(state.kind, "adam");
        assert_eq!(state.step, 4);
        let mut resumed = Adam::new(0.9); // wrong lr on purpose — import fixes it
        resumed.import_state(&ps, &state).unwrap();
        descend(&mut ps, &mut resumed, 6);

        assert_eq!(ps_ref.to_json(), ps.to_json(), "trajectories must match");
        assert_eq!(resumed.learning_rate(), 0.05);
    }

    #[test]
    fn sgd_momentum_state_roundtrip_continues_bit_for_bit() {
        let mut ps_ref = two_param_store();
        let mut opt_ref = Sgd::with_momentum(0.01, 0.9);
        descend(&mut ps_ref, &mut opt_ref, 10);

        let mut ps = two_param_store();
        let mut opt = Sgd::with_momentum(0.01, 0.9);
        descend(&mut ps, &mut opt, 7);
        let state = opt.export_state(&ps);
        let mut resumed = Sgd::new(1.0);
        resumed.import_state(&ps, &state).unwrap();
        descend(&mut ps, &mut resumed, 3);

        assert_eq!(ps_ref.to_json(), ps.to_json());
    }

    #[test]
    fn import_rejects_wrong_kind_shape_and_nonfinite_moments() {
        let mut ps = two_param_store();
        let mut adam = Adam::new(0.05);
        descend(&mut ps, &mut adam, 2);
        let state = adam.export_state(&ps);

        // Kind mismatch.
        let err = Sgd::new(0.05).import_state(&ps, &state).unwrap_err();
        assert!(err.contains("\"adam\""), "{err}");

        // Shape mismatch.
        let mut bad = state.clone();
        bad.slots[0].shape = vec![2];
        bad.slots[0].data = vec![0.0, 0.0];
        let err = Adam::new(0.05).import_state(&ps, &bad).unwrap_err();
        assert!(err.contains("shape"), "{err}");

        // Unknown parameter.
        let mut bad = state.clone();
        bad.slots[0].param = "ghost".to_string();
        let err = Adam::new(0.05).import_state(&ps, &bad).unwrap_err();
        assert!(err.contains("unknown parameter"), "{err}");

        // NaN moment buffers must be refused, not resumed from.
        let mut bad = state.clone();
        bad.slots[0].data[0] = f32::NAN;
        let err = Adam::new(0.05).import_state(&ps, &bad).unwrap_err();
        assert!(err.contains("non-finite"), "{err}");

        // A failed import must not have clobbered the target's state.
        let mut target = Adam::new(0.07);
        assert!(target.import_state(&ps, &bad).is_err());
        assert_eq!(target.learning_rate(), 0.07);
    }

    #[test]
    fn clip_rescales_large_gradients() {
        let mut ps = ParamStore::new();
        let a = ps.register("a", Tensor::zeros(&[2]));
        let mut grads = HashMap::new();
        grads.insert(a, Tensor::from_vec(vec![3.0, 4.0], &[2])); // norm 5
        let pre = clip_global_norm(&mut grads, 1.0);
        assert!((pre - 5.0).abs() < 1e-6);
        let g = &grads[&a];
        let post: f32 = g.data().iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((post - 1.0).abs() < 1e-5);
    }

    #[test]
    fn clip_leaves_small_gradients_alone() {
        let mut ps = ParamStore::new();
        let a = ps.register("a", Tensor::zeros(&[2]));
        let mut grads = HashMap::new();
        grads.insert(a, Tensor::from_vec(vec![0.3, 0.4], &[2]));
        clip_global_norm(&mut grads, 1.0);
        assert_eq!(grads[&a].data(), &[0.3, 0.4]);
    }
}
