//! Optimizers: SGD (with momentum) and Adam, plus global-norm clipping.

use crate::params::ParamStore;
use elda_autodiff::ParamId;
use elda_tensor::Tensor;
use std::collections::HashMap;

/// A first-order optimizer consuming id-keyed gradients.
pub trait Optimizer {
    /// Applies one update step to every parameter present in `grads`.
    fn step(&mut self, ps: &mut ParamStore, grads: &HashMap<ParamId, Tensor>);

    /// The current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (used by schedules and benches).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with optional classical momentum and
/// decoupled weight decay.
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: HashMap<ParamId, Tensor>,
}

impl Sgd {
    /// Plain SGD.
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
            velocity: HashMap::new(),
        }
    }

    /// SGD with momentum `mu` (`v ← mu·v + g; w ← w − lr·v`).
    pub fn with_momentum(lr: f32, mu: f32) -> Self {
        Sgd {
            lr,
            momentum: mu,
            weight_decay: 0.0,
            velocity: HashMap::new(),
        }
    }

    /// Adds decoupled weight decay (`w ← w − lr·wd·w` per step).
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, ps: &mut ParamStore, grads: &HashMap<ParamId, Tensor>) {
        for (&id, g) in grads {
            if self.weight_decay > 0.0 {
                let decay = 1.0 - self.lr * self.weight_decay;
                for w in ps.value_mut(id).data_mut() {
                    *w *= decay;
                }
            }
            if self.momentum > 0.0 {
                let v = self
                    .velocity
                    .entry(id)
                    .or_insert_with(|| Tensor::zeros(g.shape()));
                for (v, &g) in v.data_mut().iter_mut().zip(g.data()) {
                    *v = self.momentum * *v + g;
                }
                let v = self.velocity[&id].clone();
                ps.value_mut(id).axpy_assign(-self.lr, &v);
            } else {
                ps.value_mut(id).axpy_assign(-self.lr, g);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba 2015) with bias correction — the optimizer family the
/// paper trains with (initial learning rate 1e-3).
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    m: HashMap<ParamId, Tensor>,
    v: HashMap<ParamId, Tensor>,
}

impl Adam {
    /// Adam with the standard β₁=0.9, β₂=0.999, ε=1e-8.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            m: HashMap::new(),
            v: HashMap::new(),
        }
    }

    /// Fully parameterized constructor.
    pub fn with_betas(lr: f32, beta1: f32, beta2: f32, eps: f32) -> Self {
        Adam {
            weight_decay: 0.0,
            ..Adam::new(lr)
        }
        .rebetas(beta1, beta2, eps)
    }

    fn rebetas(mut self, beta1: f32, beta2: f32, eps: f32) -> Self {
        self.beta1 = beta1;
        self.beta2 = beta2;
        self.eps = eps;
        self
    }

    /// Adds decoupled (AdamW-style) weight decay.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }
}

impl Optimizer for Adam {
    fn step(&mut self, ps: &mut ParamStore, grads: &HashMap<ParamId, Tensor>) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (&id, g) in grads {
            if self.weight_decay > 0.0 {
                let decay = 1.0 - self.lr * self.weight_decay;
                for w in ps.value_mut(id).data_mut() {
                    *w *= decay;
                }
            }
            let m = self.m.entry(id).or_insert_with(|| Tensor::zeros(g.shape()));
            let v = self.v.entry(id).or_insert_with(|| Tensor::zeros(g.shape()));
            let w = ps.value_mut(id);
            for ((w, (&gk, mk)), vk) in w
                .data_mut()
                .iter_mut()
                .zip(g.data().iter().zip(m.data_mut()))
                .zip(v.data_mut())
            {
                *mk = self.beta1 * *mk + (1.0 - self.beta1) * gk;
                *vk = self.beta2 * *vk + (1.0 - self.beta2) * gk * gk;
                let m_hat = *mk / bc1;
                let v_hat = *vk / bc2;
                *w -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Rescales all gradients in place so their global L2 norm is at most
/// `max_norm`. Returns the pre-clip norm.
pub fn clip_global_norm(grads: &mut HashMap<ParamId, Tensor>, max_norm: f32) -> f32 {
    let sq: f64 = grads
        .values()
        .map(|g| g.data().iter().map(|&x| (x * x) as f64).sum::<f64>())
        .sum();
    let norm = (sq as f32).sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for g in grads.values_mut() {
            for x in g.data_mut() {
                *x *= scale;
            }
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizes f(w) = (w - 3)^2 and checks convergence.
    fn quadratic_descent(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        let mut ps = ParamStore::new();
        let id = ps.register("w", Tensor::zeros(&[1]));
        for _ in 0..steps {
            let w = ps.value(id).data()[0];
            let grad = Tensor::from_vec(vec![2.0 * (w - 3.0)], &[1]);
            let mut grads = HashMap::new();
            grads.insert(id, grad);
            opt.step(&mut ps, &grads);
        }
        ps.value(id).data()[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let w = quadratic_descent(&mut Sgd::new(0.1), 100);
        assert!((w - 3.0).abs() < 1e-3, "w = {w}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let w = quadratic_descent(&mut Sgd::with_momentum(0.05, 0.9), 200);
        assert!((w - 3.0).abs() < 1e-2, "w = {w}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let w = quadratic_descent(&mut Adam::new(0.1), 300);
        assert!((w - 3.0).abs() < 1e-2, "w = {w}");
    }

    #[test]
    fn adam_first_step_is_lr_sized() {
        // With bias correction, the very first Adam step ≈ lr in magnitude.
        let mut ps = ParamStore::new();
        let id = ps.register("w", Tensor::zeros(&[1]));
        let mut opt = Adam::new(0.001);
        let mut grads = HashMap::new();
        grads.insert(id, Tensor::from_vec(vec![123.0], &[1]));
        opt.step(&mut ps, &grads);
        let w = ps.value(id).data()[0];
        assert!((w.abs() - 0.001).abs() < 1e-5, "first step {w}");
    }

    #[test]
    fn weight_decay_shrinks_weights_without_gradient_signal() {
        // zero gradient, pure decay: weights must shrink geometrically
        let mut ps = ParamStore::new();
        let id = ps.register("w", Tensor::from_vec(vec![1.0], &[1]));
        let mut opt = Adam::new(0.1).with_weight_decay(0.5);
        let mut grads = HashMap::new();
        grads.insert(id, Tensor::zeros(&[1]));
        for _ in 0..10 {
            opt.step(&mut ps, &grads);
        }
        let w = ps.value(id).data()[0];
        // (1 - 0.1*0.5)^10 = 0.95^10 ≈ 0.5987
        assert!((w - 0.95f32.powi(10)).abs() < 1e-4, "w = {w}");
    }

    #[test]
    fn sgd_weight_decay_composes_with_update() {
        let mut ps = ParamStore::new();
        let id = ps.register("w", Tensor::from_vec(vec![2.0], &[1]));
        let mut opt = Sgd::new(0.1).with_weight_decay(1.0);
        let mut grads = HashMap::new();
        grads.insert(id, Tensor::from_vec(vec![1.0], &[1]));
        opt.step(&mut ps, &grads);
        // decay first: 2.0 * (1 - 0.1) = 1.8; then step: 1.8 - 0.1 = 1.7
        assert!((ps.value(id).data()[0] - 1.7).abs() < 1e-6);
    }

    #[test]
    fn clip_rescales_large_gradients() {
        let mut ps = ParamStore::new();
        let a = ps.register("a", Tensor::zeros(&[2]));
        let mut grads = HashMap::new();
        grads.insert(a, Tensor::from_vec(vec![3.0, 4.0], &[2])); // norm 5
        let pre = clip_global_norm(&mut grads, 1.0);
        assert!((pre - 5.0).abs() < 1e-6);
        let g = &grads[&a];
        let post: f32 = g.data().iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((post - 1.0).abs() < 1e-5);
    }

    #[test]
    fn clip_leaves_small_gradients_alone() {
        let mut ps = ParamStore::new();
        let a = ps.register("a", Tensor::zeros(&[2]));
        let mut grads = HashMap::new();
        grads.insert(a, Tensor::from_vec(vec![0.3, 0.4], &[2]));
        clip_global_norm(&mut grads, 1.0);
        assert_eq!(grads[&a].data(), &[0.3, 0.4]);
    }
}
