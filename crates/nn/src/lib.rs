#![warn(missing_docs)]
//! # elda-nn
//!
//! Neural-network building blocks on top of [`elda_autodiff`]: a parameter
//! store, initializers, layers (dense, GRU, LSTM, attention helpers),
//! optimizers (SGD, Adam), losses and a shard-parallel mini-batch trainer.
//!
//! The split of responsibilities mirrors define-by-run frameworks:
//!
//! * [`ParamStore`] owns every parameter tensor, keyed by [`elda_autodiff::ParamId`]
//!   and a human-readable name. Layers hold ids, not tensors.
//! * A layer's `forward` binds its parameters onto the caller's [`elda_autodiff::Tape`]
//!   and records ops. Tapes are cheap and rebuilt per batch.
//! * [`optim::Optimizer`] implementations consume the id-keyed gradient map
//!   produced by backward.
//! * [`train::Trainer`] runs epochs: shuffle, shard, differentiate shards on
//!   worker threads (tapes are independent; the store is read-only during
//!   the pass), sum gradients, step.
//! * [`checkpoint`] persists the full training state durably (CRC32
//!   integrity footer, atomic writes, keep-last-K rotation) so runs
//!   survive crashes; [`faults`] injects deterministic failures to prove
//!   they do.

pub mod checkpoint;
pub mod faults;
pub mod init;
pub mod layers;
pub mod optim;
pub mod params;
pub mod schedule;
pub mod train;

pub use checkpoint::{fingerprint_of, write_atomic, Checkpoint, CheckpointConfig, CRC_PREFIX};
pub use faults::{ChaosPlan, FaultPlan};
pub use init::Init;
pub use layers::attention::{additive_attention_scores, dot_attention_pool};
pub use layers::dense::Dense;
pub use layers::dropout::Dropout;
pub use layers::gru::{Gru, GruCell};
pub use layers::lstm::{Lstm, LstmCell};
pub use layers::positional::positional_encoding;
pub use optim::{clip_global_norm, Adam, Optimizer, OptimizerState, Sgd};
pub use params::{ParamStore, ParamView};
pub use schedule::LrSchedule;
pub use train::{EpochStats, RecoveryEvent, RecoveryPolicy, TrainConfig, Trainer};
