//! Learning-rate schedules, applied between epochs by the caller.

/// A learning-rate schedule: maps the epoch index to a multiplier on the
/// base learning rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LrSchedule {
    /// Constant learning rate.
    Constant,
    /// Multiply by `gamma` every `every` epochs (classic step decay).
    StepDecay {
        /// Epoch interval between decays.
        every: usize,
        /// Multiplicative factor per decay (0 < gamma ≤ 1).
        gamma: f32,
    },
    /// Linear warmup over the first `warmup` epochs, then constant.
    Warmup {
        /// Number of warmup epochs.
        warmup: usize,
    },
    /// Cosine annealing from 1 down to `floor` over `total` epochs.
    Cosine {
        /// Total schedule length in epochs.
        total: usize,
        /// Final multiplier (≥ 0).
        floor: f32,
    },
}

impl LrSchedule {
    /// The multiplier for `epoch` (0-based).
    pub fn multiplier(self, epoch: usize) -> f32 {
        match self {
            LrSchedule::Constant => 1.0,
            LrSchedule::StepDecay { every, gamma } => {
                assert!(every > 0, "step decay interval must be positive");
                gamma.powi((epoch / every) as i32)
            }
            LrSchedule::Warmup { warmup } => {
                if warmup == 0 || epoch >= warmup {
                    1.0
                } else {
                    (epoch + 1) as f32 / warmup as f32
                }
            }
            LrSchedule::Cosine { total, floor } => {
                assert!(total > 0, "cosine schedule needs a positive length");
                let progress = (epoch.min(total) as f32) / total as f32;
                let cos = 0.5 * (1.0 + (std::f32::consts::PI * progress).cos());
                floor + (1.0 - floor) * cos
            }
        }
    }

    /// Applies the schedule to an optimizer for the coming epoch.
    pub fn apply(self, base_lr: f32, epoch: usize, opt: &mut dyn crate::optim::Optimizer) {
        opt.set_learning_rate(base_lr * self.multiplier(epoch));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::{Optimizer, Sgd};

    #[test]
    fn constant_is_one() {
        assert_eq!(LrSchedule::Constant.multiplier(0), 1.0);
        assert_eq!(LrSchedule::Constant.multiplier(100), 1.0);
    }

    #[test]
    fn step_decay_halves_on_schedule() {
        let s = LrSchedule::StepDecay {
            every: 3,
            gamma: 0.5,
        };
        assert_eq!(s.multiplier(0), 1.0);
        assert_eq!(s.multiplier(2), 1.0);
        assert_eq!(s.multiplier(3), 0.5);
        assert_eq!(s.multiplier(6), 0.25);
    }

    #[test]
    fn warmup_ramps_linearly() {
        let s = LrSchedule::Warmup { warmup: 4 };
        assert_eq!(s.multiplier(0), 0.25);
        assert_eq!(s.multiplier(1), 0.5);
        assert_eq!(s.multiplier(3), 1.0);
        assert_eq!(s.multiplier(10), 1.0);
    }

    #[test]
    fn cosine_descends_to_floor() {
        let s = LrSchedule::Cosine {
            total: 10,
            floor: 0.1,
        };
        assert_eq!(s.multiplier(0), 1.0);
        let mid = s.multiplier(5);
        assert!((mid - 0.55).abs() < 1e-5, "mid {mid}");
        assert!((s.multiplier(10) - 0.1).abs() < 1e-6);
        assert!((s.multiplier(99) - 0.1).abs() < 1e-6, "clamps past the end");
    }

    #[test]
    fn apply_updates_optimizer() {
        let mut opt = Sgd::new(0.2);
        LrSchedule::StepDecay {
            every: 1,
            gamma: 0.5,
        }
        .apply(0.2, 2, &mut opt);
        assert!((opt.learning_rate() - 0.05).abs() < 1e-7);
    }

    #[test]
    fn monotone_decay_property() {
        let s = LrSchedule::Cosine {
            total: 20,
            floor: 0.0,
        };
        let mut prev = f32::INFINITY;
        for e in 0..=20 {
            let m = s.multiplier(e);
            assert!(m <= prev + 1e-6, "cosine must not increase");
            prev = m;
        }
    }
}
