//! Durable training checkpoints: a versioned on-disk format with CRC32
//! integrity footer, atomic writes (tmp + fsync + rename), keep-last-K
//! rotation and a corrupt-tolerant resume scan.
//!
//! ## On-disk format (`elda-ckpt/v1`)
//!
//! One file per checkpoint, named `ckpt-<epoch:05>.json`, containing a
//! single JSON document followed by an integrity footer on its own line:
//!
//! ```text
//! {"format":"elda-ckpt/v1","fingerprint":...,"epoch":...,...}
//! elda-ckpt-crc32:xxxxxxxx
//! ```
//!
//! The footer is the IEEE CRC32 of every byte before the footer line's
//! leading newline, in lowercase hex. A partial write (power loss between
//! `write` and `fsync`, injected truncation, manual tampering) fails the
//! CRC check and the resume scan skips the file with a warning instead of
//! aborting the run.
//!
//! The document carries the full training state needed to continue
//! bit-for-bit: parameter tensors (the [`ParamStore`] schema), the
//! optimizer snapshot ([`OptimizerState`], including Adam's step counter
//! and moment buffers), the completed-epoch counter, the shuffle seed (the
//! trainer derives each epoch's permutation from `seed + epoch`, so no
//! separate RNG state is needed), early-stopping state (best validation
//! score, stale count, best-epoch parameters) and a config fingerprint
//! that refuses resumption under a different model/data/hyperparameter
//! configuration.

use crate::optim::{Optimizer, OptimizerState};
use crate::params::ParamStore;
use serde::{Deserialize, Serialize};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Format tag stored in (and required of) every checkpoint document.
pub const CKPT_FORMAT: &str = "elda-ckpt/v1";

/// Prefix of the integrity footer line.
/// Footer prefix of every checkpoint file (`elda-ckpt-crc32:xxxxxxxx`).
/// Its presence distinguishes an `elda-ckpt/v1` file from an `elda/v1`
/// model artifact — deployment paths (e.g. `elda serve` reload) sniff it
/// to pick the right loader.
pub const CRC_PREFIX: &str = "elda-ckpt-crc32:";

/// IEEE CRC32 (the zlib/PNG polynomial), bitwise implementation — the
/// workspace is offline-friendly and takes no checksum crate for this.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xffff_ffffu32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

/// Stable 8-hex-digit fingerprint of a configuration description string.
/// Both sides (writer and resumer) build the same description; equality of
/// fingerprints is what licenses continuing a run from disk.
pub fn fingerprint_of(text: &str) -> String {
    format!("{:08x}", crc32(text.as_bytes()))
}

/// Writes `bytes` to `path` atomically: write a sibling `.tmp` file, fsync
/// it, rename over the target, fsync the directory. A crash at any point
/// leaves either the old file or the new one, never a torn mix.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), String> {
    let tmp = PathBuf::from(format!("{}.tmp", path.display()));
    let mut f = std::fs::File::create(&tmp)
        .map_err(|e| format!("{}: create failed: {e}", tmp.display()))?;
    f.write_all(bytes)
        .map_err(|e| format!("{}: write failed: {e}", tmp.display()))?;
    f.sync_all()
        .map_err(|e| format!("{}: fsync failed: {e}", tmp.display()))?;
    drop(f);
    std::fs::rename(&tmp, path).map_err(|e| format!("{}: rename failed: {e}", path.display()))?;
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        // Persist the rename itself; ignore platforms/filesystems where
        // directories cannot be fsynced.
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Checkpointing policy, carried by `TrainConfig`.
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// Directory holding `ckpt-*.json` files (created if missing).
    pub dir: PathBuf,
    /// Write a checkpoint every `every` completed epochs (in addition to
    /// every best-validation improvement). 0 disables the periodic writes.
    pub every: usize,
    /// How many checkpoint files to retain (oldest rotated out first).
    pub keep_last: usize,
    /// Resume from the newest intact checkpoint in `dir` before epoch 0.
    pub resume: bool,
    /// Expected config fingerprint (see [`fingerprint_of`]).
    pub fingerprint: String,
}

impl CheckpointConfig {
    /// Checkpoint into `dir` after every epoch, keeping the last 3 files.
    pub fn new(dir: impl Into<PathBuf>, fingerprint: impl Into<String>) -> Self {
        CheckpointConfig {
            dir: dir.into(),
            every: 1,
            keep_last: 3,
            resume: false,
            fingerprint: fingerprint.into(),
        }
    }
}

/// One durable training checkpoint (see the module docs for the format).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Format tag, always [`CKPT_FORMAT`].
    pub format: String,
    /// Config fingerprint the run was started with.
    pub fingerprint: String,
    /// Last *completed* epoch (0-based); resume continues at `epoch + 1`.
    pub epoch: usize,
    /// Shuffle seed — recorded for post-mortem debugging (the fingerprint
    /// already guards against resuming with a different seed).
    pub shuffle_seed: u64,
    /// Parameter tensors ([`ParamStore::to_json`] schema).
    pub params: serde_json::Value,
    /// Full optimizer snapshot.
    pub optimizer: OptimizerState,
    /// Best validation score so far (`None` before the first finite score).
    pub best_score: Option<f32>,
    /// Epochs since the best score improved (early-stopping state).
    pub stale: usize,
    /// Parameters at the best-scoring epoch, when different from `params`.
    pub best_params: Option<serde_json::Value>,
}

impl Checkpoint {
    /// Snapshots the complete training state after `epoch` finished.
    #[allow(clippy::too_many_arguments)]
    pub fn capture(
        ps: &ParamStore,
        opt: &dyn Optimizer,
        epoch: usize,
        cfg: &CheckpointConfig,
        shuffle_seed: u64,
        best_score: f32,
        stale: usize,
        best_params_json: Option<&str>,
    ) -> Checkpoint {
        let params = serde_json::from_str(&ps.to_json()).expect("param store JSON is valid");
        let best_params = best_params_json
            .map(|j| serde_json::from_str(j).expect("best-checkpoint JSON is valid"));
        Checkpoint {
            format: CKPT_FORMAT.to_string(),
            fingerprint: cfg.fingerprint.clone(),
            epoch,
            shuffle_seed,
            params,
            optimizer: opt.export_state(ps),
            best_score: best_score.is_finite().then_some(best_score),
            stale,
            best_params,
        }
    }

    /// Restores parameters and optimizer state into `ps`/`opt`. Parameter
    /// loading is strict: a checkpoint with NaN/Inf weights is refused.
    pub fn apply(&self, ps: &mut ParamStore, opt: &mut dyn Optimizer) -> Result<(), String> {
        if self.format != CKPT_FORMAT {
            return Err(format!(
                "unsupported checkpoint format {:?} (expected {CKPT_FORMAT:?})",
                self.format
            ));
        }
        let params =
            serde_json::to_string(&self.params).map_err(|e| format!("checkpoint params: {e}"))?;
        ps.load_json_strict(&params)?;
        opt.import_state(ps, &self.optimizer)?;
        Ok(())
    }

    /// The best-epoch parameter JSON, for seeding the trainer's in-memory
    /// early-stopping restore.
    pub fn best_params_json(&self) -> Option<String> {
        self.best_params
            .as_ref()
            .map(|v| serde_json::to_string(v).expect("checkpoint JSON is serializable"))
    }

    /// The full file contents: document + CRC32 footer.
    pub fn to_file_string(&self) -> String {
        let body = serde_json::to_string(self).expect("checkpoint is serializable");
        format!("{body}\n{CRC_PREFIX}{:08x}\n", crc32(body.as_bytes()))
    }

    /// Parses and integrity-checks checkpoint file contents. `path` is only
    /// used to make error messages actionable.
    pub fn from_file_string(text: &str, path: &Path) -> Result<Checkpoint, String> {
        let shown = path.display();
        let Some(idx) = text.rfind(&format!("\n{CRC_PREFIX}")) else {
            return Err(format!(
                "{shown}: missing integrity footer (truncated or not a checkpoint)"
            ));
        };
        let body = &text[..idx];
        let footer = text[idx + 1 + CRC_PREFIX.len()..].trim_end();
        let stored = u32::from_str_radix(footer, 16)
            .map_err(|_| format!("{shown}: malformed integrity footer {footer:?}"))?;
        let actual = crc32(body.as_bytes());
        if stored != actual {
            return Err(format!(
                "{shown}: CRC mismatch (stored {stored:08x}, computed {actual:08x}) — \
                 file is corrupt or truncated"
            ));
        }
        let ckpt: Checkpoint =
            serde_json::from_str(body).map_err(|e| format!("{shown}: parse error: {e}"))?;
        if ckpt.format != CKPT_FORMAT {
            return Err(format!(
                "{shown}: unsupported checkpoint format {:?} (expected {CKPT_FORMAT:?})",
                ckpt.format
            ));
        }
        Ok(ckpt)
    }

    /// Atomically writes this checkpoint into `cfg.dir` (created if
    /// missing) and rotates old files down to `cfg.keep_last`. Returns the
    /// written path.
    pub fn save(&self, cfg: &CheckpointConfig) -> Result<PathBuf, String> {
        std::fs::create_dir_all(&cfg.dir)
            .map_err(|e| format!("{}: cannot create checkpoint dir: {e}", cfg.dir.display()))?;
        let path = cfg.dir.join(format!("ckpt-{:05}.json", self.epoch));
        write_atomic(&path, self.to_file_string().as_bytes())?;
        crate::faults::maybe_truncate_checkpoint(&path);
        rotate(&cfg.dir, cfg.keep_last.max(1));
        Ok(path)
    }
}

/// Epochs of the checkpoint files present in `dir`, newest first.
fn list_epochs(dir: &Path) -> Vec<usize> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut epochs: Vec<usize> = entries
        .filter_map(|e| {
            let name = e.ok()?.file_name().into_string().ok()?;
            let rest = name.strip_prefix("ckpt-")?.strip_suffix(".json")?;
            rest.parse().ok()
        })
        .collect();
    epochs.sort_unstable_by(|a, b| b.cmp(a));
    epochs
}

/// Removes all but the `keep` newest checkpoint files. Best-effort: an
/// unremovable file only costs disk, never correctness.
fn rotate(dir: &Path, keep: usize) {
    for epoch in list_epochs(dir).into_iter().skip(keep) {
        let _ = std::fs::remove_file(dir.join(format!("ckpt-{epoch:05}.json")));
    }
}

/// Outcome of a resume scan over a checkpoint directory.
#[derive(Debug)]
pub struct ResumeScan {
    /// The newest intact, fingerprint-matching checkpoint, with its path.
    pub found: Option<(Checkpoint, PathBuf)>,
    /// One warning per corrupt/unreadable file that was skipped.
    pub skipped: Vec<String>,
}

/// Finds the newest intact checkpoint in `dir`, skipping corrupt or
/// truncated files (each skip produces a warning in
/// [`ResumeScan::skipped`]). A structurally *valid* checkpoint written by a
/// different configuration is an error, not a skip: resuming across config
/// changes silently trains the wrong model.
pub fn scan_resume(dir: &Path, fingerprint: &str) -> Result<ResumeScan, String> {
    let mut skipped = Vec::new();
    for epoch in list_epochs(dir) {
        let path = dir.join(format!("ckpt-{epoch:05}.json"));
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                skipped.push(format!("{}: unreadable: {e}", path.display()));
                continue;
            }
        };
        match Checkpoint::from_file_string(&text, &path) {
            Ok(ckpt) => {
                if ckpt.fingerprint != fingerprint {
                    return Err(format!(
                        "{}: config fingerprint {} does not match this run's {} — \
                         refusing to resume a different configuration \
                         (use a fresh --checkpoint-dir)",
                        path.display(),
                        ckpt.fingerprint,
                        fingerprint
                    ));
                }
                return Ok(ResumeScan {
                    found: Some((ckpt, path)),
                    skipped,
                });
            }
            Err(e) => skipped.push(e),
        }
    }
    Ok(ResumeScan {
        found: None,
        skipped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Adam;
    use elda_tensor::Tensor;
    use std::collections::HashMap;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("elda-ckpt-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn store_and_opt() -> (ParamStore, Adam) {
        let mut ps = ParamStore::new();
        let w = ps.register("w", Tensor::from_vec(vec![0.5, -1.5], &[2]));
        ps.register("b", Tensor::zeros(&[1]));
        let mut opt = Adam::new(0.01);
        let mut grads = HashMap::new();
        grads.insert(w, Tensor::from_vec(vec![0.1, -0.2], &[2]));
        opt.step(&mut ps, &grads);
        (ps, opt)
    }

    #[test]
    fn crc32_matches_the_reference_vector() {
        // The classic IEEE CRC32 check value.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn write_atomic_replaces_and_leaves_no_tmp() {
        let dir = tmpdir("atomic");
        let path = dir.join("out.json");
        write_atomic(&path, b"first").unwrap();
        write_atomic(&path, b"second").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "second");
        assert!(!dir.join("out.json.tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_roundtrips_params_and_optimizer_state() {
        let (ps, opt) = store_and_opt();
        let cfg = CheckpointConfig::new(tmpdir("roundtrip"), "fp1");
        let ckpt = Checkpoint::capture(&ps, &opt, 4, &cfg, 7, 0.75, 1, Some(&ps.to_json()));
        let path = ckpt.save(&cfg).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let loaded = Checkpoint::from_file_string(&text, &path).unwrap();
        assert_eq!(loaded.epoch, 4);
        assert_eq!(loaded.shuffle_seed, 7);
        assert_eq!(loaded.best_score, Some(0.75));
        assert_eq!(loaded.stale, 1);

        // Restore into a fresh store/optimizer and compare exactly.
        let mut ps2 = ParamStore::new();
        ps2.register("w", Tensor::zeros(&[2]));
        ps2.register("b", Tensor::zeros(&[1]));
        let mut opt2 = Adam::new(0.9);
        loaded.apply(&mut ps2, &mut opt2).unwrap();
        assert_eq!(ps2.to_json(), ps.to_json());
        assert_eq!(opt2.export_state(&ps2), opt.export_state(&ps));
        std::fs::remove_dir_all(&cfg.dir).unwrap();
    }

    #[test]
    fn corruption_is_detected_with_the_path_in_the_error() {
        let (ps, opt) = store_and_opt();
        let cfg = CheckpointConfig::new(tmpdir("corrupt"), "fp1");
        let ckpt = Checkpoint::capture(&ps, &opt, 0, &cfg, 0, f32::NEG_INFINITY, 0, None);
        let path = ckpt.save(&cfg).unwrap();
        let good = std::fs::read_to_string(&path).unwrap();

        // Flipped byte inside the document → CRC mismatch.
        let flipped = good.replacen("\"format\"", "\"fxrmat\"", 1);
        let err = Checkpoint::from_file_string(&flipped, &path).unwrap_err();
        assert!(err.contains("CRC mismatch"), "{err}");
        assert!(err.contains(path.to_str().unwrap()), "{err}");

        // Truncation → footer gone entirely.
        let truncated = &good[..good.len() / 2];
        let err = Checkpoint::from_file_string(truncated, &path).unwrap_err();
        assert!(err.contains("missing integrity footer"), "{err}");

        // Garbage footer digits.
        let mut bad_footer = good.clone();
        bad_footer.truncate(good.len() - 9);
        bad_footer.push_str("zzzzzzzz\n");
        let err = Checkpoint::from_file_string(&bad_footer, &path).unwrap_err();
        assert!(err.contains("malformed integrity footer"), "{err}");
        std::fs::remove_dir_all(&cfg.dir).unwrap();
    }

    #[test]
    fn scan_skips_corrupt_newest_and_finds_previous_intact() {
        let (ps, opt) = store_and_opt();
        let cfg = CheckpointConfig::new(tmpdir("scan"), "fp1");
        for epoch in 0..3 {
            Checkpoint::capture(&ps, &opt, epoch, &cfg, 0, 0.5, 0, None)
                .save(&cfg)
                .unwrap();
        }
        // Truncate the newest file mid-document.
        let newest = cfg.dir.join("ckpt-00002.json");
        let text = std::fs::read_to_string(&newest).unwrap();
        std::fs::write(&newest, &text[..text.len() / 3]).unwrap();

        let scan = scan_resume(&cfg.dir, "fp1").unwrap();
        let (found, path) = scan.found.expect("older checkpoint must be found");
        assert_eq!(found.epoch, 1, "skips to the previous intact file");
        assert!(path.ends_with("ckpt-00001.json"));
        assert_eq!(scan.skipped.len(), 1);
        assert!(
            scan.skipped[0].contains("ckpt-00002.json"),
            "{:?}",
            scan.skipped
        );
        std::fs::remove_dir_all(&cfg.dir).unwrap();
    }

    #[test]
    fn scan_refuses_foreign_fingerprints_and_handles_empty_dirs() {
        let (ps, opt) = store_and_opt();
        let cfg = CheckpointConfig::new(tmpdir("fp"), "fp1");
        Checkpoint::capture(&ps, &opt, 0, &cfg, 0, 0.5, 0, None)
            .save(&cfg)
            .unwrap();
        let err = scan_resume(&cfg.dir, "OTHER").unwrap_err();
        assert!(err.contains("fingerprint"), "{err}");

        let empty = tmpdir("fp-empty");
        let scan = scan_resume(&empty, "fp1").unwrap();
        assert!(scan.found.is_none() && scan.skipped.is_empty());
        // A directory that does not exist at all is also a clean "nothing".
        let scan = scan_resume(&empty.join("nope"), "fp1").unwrap();
        assert!(scan.found.is_none());
        std::fs::remove_dir_all(&cfg.dir).unwrap();
        std::fs::remove_dir_all(&empty).unwrap();
    }

    #[test]
    fn rotation_keeps_only_the_newest_k() {
        let (ps, opt) = store_and_opt();
        let mut cfg = CheckpointConfig::new(tmpdir("rotate"), "fp1");
        cfg.keep_last = 2;
        for epoch in 0..5 {
            Checkpoint::capture(&ps, &opt, epoch, &cfg, 0, 0.5, 0, None)
                .save(&cfg)
                .unwrap();
        }
        assert_eq!(list_epochs(&cfg.dir), vec![4, 3]);
        std::fs::remove_dir_all(&cfg.dir).unwrap();
    }

    #[test]
    fn apply_refuses_nan_weights() {
        let (ps, opt) = store_and_opt();
        let cfg = CheckpointConfig::new(tmpdir("nan"), "fp1");
        let mut ckpt = Checkpoint::capture(&ps, &opt, 0, &cfg, 0, 0.5, 0, None);
        // Poison one weight in the document (1e39 overflows f32 to +Inf).
        ckpt.params = serde_json::from_str(
            r#"[{"name":"w","shape":[2],"data":[1e39,0.0]},{"name":"b","shape":[1],"data":[0.0]}]"#,
        )
        .unwrap();
        let mut ps2 = ParamStore::new();
        ps2.register("w", Tensor::zeros(&[2]));
        ps2.register("b", Tensor::zeros(&[1]));
        let err = ckpt.apply(&mut ps2, &mut Adam::new(0.01)).unwrap_err();
        assert!(err.contains("non-finite"), "{err}");
        std::fs::remove_dir_all(&cfg.dir).unwrap();
    }

    #[test]
    fn fingerprints_are_stable_and_sensitive() {
        assert_eq!(fingerprint_of("a"), fingerprint_of("a"));
        assert_ne!(fingerprint_of("lr=0.001"), fingerprint_of("lr=0.01"));
        assert_eq!(fingerprint_of("a").len(), 8);
    }
}
