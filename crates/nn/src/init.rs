//! Weight initialization schemes.

use elda_tensor::Tensor;
use rand::Rng;

/// How to fill a freshly registered parameter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Init {
    /// All zeros (biases).
    Zeros,
    /// All ones.
    Ones,
    /// A fixed constant.
    Constant(f32),
    /// Uniform in `[-limit, limit]`.
    Uniform(f32),
    /// Gaussian with the given standard deviation.
    Normal(f32),
    /// Glorot/Xavier uniform keyed to `(fan_in + fan_out)`; the default for
    /// weight matrices throughout the workspace (matches Keras' default,
    /// which the paper's implementation used).
    Glorot,
}

impl Init {
    /// Materializes a tensor of shape `dims`.
    pub fn build(self, dims: &[usize], rng: &mut (impl Rng + ?Sized)) -> Tensor {
        match self {
            Init::Zeros => Tensor::zeros(dims),
            Init::Ones => Tensor::ones(dims),
            Init::Constant(c) => Tensor::full(dims, c),
            Init::Uniform(limit) => Tensor::rand_uniform(dims, -limit, limit, rng),
            Init::Normal(std) => Tensor::rand_normal(dims, 0.0, std, rng),
            Init::Glorot => {
                if dims.len() >= 2 {
                    Tensor::glorot_uniform(dims, rng)
                } else {
                    // Vectors have no meaningful fan pair; fall back to a
                    // small uniform keyed to length.
                    let limit = (3.0 / dims[0] as f32).sqrt();
                    Tensor::rand_uniform(dims, -limit, limit, rng)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_and_ones() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(Init::Zeros
            .build(&[3], &mut rng)
            .data()
            .iter()
            .all(|&v| v == 0.0));
        assert!(Init::Ones
            .build(&[3], &mut rng)
            .data()
            .iter()
            .all(|&v| v == 1.0));
        assert!(Init::Constant(2.5)
            .build(&[3], &mut rng)
            .data()
            .iter()
            .all(|&v| v == 2.5));
    }

    #[test]
    fn glorot_vector_fallback_is_bounded() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = Init::Glorot.build(&[12], &mut rng);
        let limit = (3.0f32 / 12.0).sqrt();
        assert!(t.data().iter().all(|&v| v.abs() <= limit));
    }

    #[test]
    fn normal_std_scales_spread() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = Init::Normal(0.01).build(&[1000], &mut rng);
        let var = t.square().mean_all();
        assert!(var < 0.001, "variance {var} too large for std 0.01");
    }
}
