//! Mini-batch training loop with optional shard-parallel gradients and
//! validation-based early stopping.

use crate::optim::{clip_global_norm, Optimizer};
use crate::params::ParamStore;
use elda_autodiff::ParamId;
use elda_tensor::Tensor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashMap;
use std::time::Instant;

/// Training-loop configuration.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size (the paper uses 64).
    pub batch_size: usize,
    /// Seed for the per-epoch shuffle (combined with the epoch index).
    pub shuffle_seed: u64,
    /// Optional global-norm gradient clipping.
    pub clip_norm: Option<f32>,
    /// Worker threads for shard-parallel gradient computation; 1 = serial.
    pub threads: usize,
    /// Early-stopping patience in epochs (None = run all epochs). Applies
    /// only to [`Trainer::fit`] with a validation scorer.
    pub patience: Option<usize>,
    /// Print one line per epoch.
    pub verbose: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 20,
            batch_size: 64,
            shuffle_seed: 0,
            clip_norm: Some(5.0),
            threads: 1,
            patience: Some(5),
            verbose: false,
        }
    }
}

/// Per-epoch summary returned by [`Trainer::run_epoch`].
#[derive(Debug, Clone)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss over the epoch's batches.
    pub mean_loss: f32,
    /// Number of optimizer steps taken.
    pub batches: usize,
    /// Mean pre-clip gradient norm (diagnostic for divergence).
    pub mean_grad_norm: f32,
    /// Wall-clock duration of the epoch in seconds.
    pub wall_s: f32,
    /// Training throughput: samples processed per wall-clock second.
    pub samples_per_s: f32,
}

/// The loss closure contract: given the (read-only) parameter store and a
/// set of sample indices, produce the mean loss over those samples and the
/// gradient of that mean loss per parameter.
pub type LossFn<'a> = dyn Fn(&ParamStore, &[usize]) -> (f32, HashMap<ParamId, Tensor>) + Sync + 'a;

/// Drives epochs of mini-batch SGD-family training.
pub struct Trainer {
    cfg: TrainConfig,
}

impl Trainer {
    /// A trainer with the given configuration.
    pub fn new(cfg: TrainConfig) -> Self {
        Trainer { cfg }
    }

    /// The active configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.cfg
    }

    /// One pass over `n_samples` training samples.
    ///
    /// The loss closure is invoked per shard; with `threads > 1` shards of
    /// each batch are differentiated on scoped worker threads (the store is
    /// only read during the pass) and their gradients combined by
    /// shard-size-weighted average before a single optimizer step.
    pub fn run_epoch(
        &self,
        ps: &mut ParamStore,
        opt: &mut dyn Optimizer,
        n_samples: usize,
        epoch: usize,
        loss_fn: &LossFn<'_>,
    ) -> EpochStats {
        assert!(n_samples > 0, "cannot train on zero samples");
        let mut indices: Vec<usize> = (0..n_samples).collect();
        let mut rng = StdRng::seed_from_u64(self.cfg.shuffle_seed.wrapping_add(epoch as u64));
        indices.shuffle(&mut rng);

        let profiling = elda_obs::enabled();
        let epoch_start = Instant::now();
        let mut total_loss = 0.0f64;
        let mut total_norm = 0.0f64;
        let mut batches = 0usize;
        for batch in indices.chunks(self.cfg.batch_size) {
            let batch_start = profiling.then(Instant::now);
            let (loss, mut grads) = self.batch_gradients(ps, batch, loss_fn);
            let norm = match self.cfg.clip_norm {
                Some(max) => clip_global_norm(&mut grads, max),
                None => grads
                    .values()
                    .map(|g| g.data().iter().map(|&x| (x * x) as f64).sum::<f64>())
                    .sum::<f64>()
                    .sqrt() as f32,
            };
            opt.step(ps, &grads);
            if let Some(start) = batch_start {
                let elapsed = start.elapsed();
                elda_obs::global().record("train", "batch", elapsed, batch.len() as u64);
                elda_obs::emit(
                    &elda_obs::TraceEvent::new("batch")
                        .with("epoch", epoch)
                        .with("batch", batches)
                        .with("loss", loss)
                        .with("grad_norm", norm)
                        .with("wall_ms", elapsed.as_secs_f64() * 1e3),
                );
            }
            total_loss += loss as f64;
            total_norm += norm as f64;
            batches += 1;
        }
        let wall_s = epoch_start.elapsed().as_secs_f32();
        let stats = EpochStats {
            epoch,
            mean_loss: (total_loss / batches as f64) as f32,
            batches,
            mean_grad_norm: (total_norm / batches as f64) as f32,
            wall_s,
            samples_per_s: n_samples as f32 / wall_s.max(f32::MIN_POSITIVE),
        };
        if profiling {
            elda_obs::emit(
                &elda_obs::TraceEvent::new("epoch")
                    .with("epoch", stats.epoch)
                    .with("mean_loss", stats.mean_loss)
                    .with("batches", stats.batches)
                    .with("mean_grad_norm", stats.mean_grad_norm)
                    .with("wall_ms", (wall_s as f64) * 1e3)
                    .with("samples_per_s", stats.samples_per_s),
            );
        }
        if self.cfg.verbose {
            eprintln!(
                "epoch {:>3}: loss {:.5}  grad-norm {:.3}  ({} batches, {:.2}s, {:.0} samples/s)",
                stats.epoch,
                stats.mean_loss,
                stats.mean_grad_norm,
                stats.batches,
                stats.wall_s,
                stats.samples_per_s
            );
        }
        stats
    }

    /// Computes the (possibly shard-parallel) mean loss and gradients for
    /// one batch of indices.
    fn batch_gradients(
        &self,
        ps: &ParamStore,
        batch: &[usize],
        loss_fn: &LossFn<'_>,
    ) -> (f32, HashMap<ParamId, Tensor>) {
        let threads = self.cfg.threads.max(1).min(batch.len());
        if threads == 1 {
            return loss_fn(ps, batch);
        }
        let shard_size = batch.len().div_ceil(threads);
        let shards: Vec<&[usize]> = batch.chunks(shard_size).collect();
        let results: Vec<(usize, f32, HashMap<ParamId, Tensor>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = shards
                .iter()
                .map(|shard| {
                    scope.spawn(move || {
                        let (loss, grads) = loss_fn(ps, shard);
                        (shard.len(), loss, grads)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard thread panicked"))
                .collect()
        });
        // Shard-size-weighted combination: each shard reports the mean over
        // its samples, so the batch mean is Σ (n_i / N) · shard_i.
        let total: usize = results.iter().map(|(n, _, _)| n).sum();
        let mut loss = 0.0f32;
        let mut combined: HashMap<ParamId, Tensor> = HashMap::new();
        for (n, shard_loss, shard_grads) in results {
            let w = n as f32 / total as f32;
            loss += w * shard_loss;
            for (id, g) in shard_grads {
                match combined.get_mut(&id) {
                    Some(acc) => acc.axpy_assign(w, &g),
                    None => {
                        combined.insert(id, g.scale(w));
                    }
                }
            }
        }
        (loss, combined)
    }

    /// Trains for up to `cfg.epochs` epochs, scoring on a validation metric
    /// after each (higher is better), keeping the best checkpoint and
    /// restoring it at the end. Stops early after `cfg.patience` epochs
    /// without improvement. Returns `(epoch stats, best validation score)`.
    pub fn fit(
        &self,
        ps: &mut ParamStore,
        opt: &mut dyn Optimizer,
        n_samples: usize,
        loss_fn: &LossFn<'_>,
        val_fn: &mut dyn FnMut(&ParamStore) -> f32,
    ) -> (Vec<EpochStats>, f32) {
        let mut history = Vec::with_capacity(self.cfg.epochs);
        let mut best_score = f32::NEG_INFINITY;
        let mut best_checkpoint: Option<String> = None;
        let mut stale = 0usize;
        for epoch in 0..self.cfg.epochs {
            let stats = self.run_epoch(ps, opt, n_samples, epoch, loss_fn);
            history.push(stats);
            let score = val_fn(ps);
            if score > best_score {
                best_score = score;
                best_checkpoint = Some(ps.to_json());
                stale = 0;
            } else {
                stale += 1;
                if let Some(patience) = self.cfg.patience {
                    if stale >= patience {
                        break;
                    }
                }
            }
        }
        if let Some(ckpt) = best_checkpoint {
            ps.load_json(&ckpt).expect("restoring best checkpoint");
        }
        (history, best_score)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Adam;
    use elda_autodiff::Tape;

    /// Builds a linearly separable 2-feature dataset and a logistic
    /// regression loss closure over it.
    fn toy_problem() -> (ParamStore, Vec<Tensor>, Vec<f32>) {
        let mut ps = ParamStore::new();
        ps.register("w", Tensor::zeros(&[2, 1]));
        ps.register("b", Tensor::zeros(&[1]));
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..64 {
            let x0 = (i % 8) as f32 / 4.0 - 1.0;
            let x1 = (i / 8) as f32 / 4.0 - 1.0;
            xs.push(Tensor::from_vec(vec![x0, x1], &[2]));
            ys.push(if x0 + x1 > 0.0 { 1.0 } else { 0.0 });
        }
        (ps, xs, ys)
    }

    fn logistic_loss(
        ps: &ParamStore,
        idx: &[usize],
        xs: &[Tensor],
        ys: &[f32],
    ) -> (f32, HashMap<ParamId, Tensor>) {
        let mut tape = Tape::new();
        let n = idx.len();
        let xb = Tensor::from_vec(
            idx.iter().flat_map(|&i| xs[i].data().to_vec()).collect(),
            &[n, 2],
        );
        let yb = Tensor::from_vec(idx.iter().map(|&i| ys[i]).collect(), &[n, 1]);
        let x = tape.leaf(xb);
        let w = ps.bind(&mut tape, ps.by_name("w").unwrap().id);
        let b = ps.bind(&mut tape, ps.by_name("b").unwrap().id);
        let z = tape.matmul(x, w);
        let z = tape.add(z, b);
        let loss = tape.bce_with_logits(z, &yb);
        let value = tape.value(loss).item();
        (value, tape.backward(loss).into_param_map())
    }

    #[test]
    fn training_reduces_loss() {
        let (mut ps, xs, ys) = toy_problem();
        let trainer = Trainer::new(TrainConfig {
            epochs: 30,
            batch_size: 16,
            ..Default::default()
        });
        let mut opt = Adam::new(0.05);
        let loss_fn = |ps: &ParamStore, idx: &[usize]| logistic_loss(ps, idx, &xs, &ys);
        let first = trainer.run_epoch(&mut ps, &mut opt, xs.len(), 0, &loss_fn);
        let mut last = first.clone();
        for e in 1..30 {
            last = trainer.run_epoch(&mut ps, &mut opt, xs.len(), e, &loss_fn);
        }
        assert!(
            last.mean_loss < 0.5 * first.mean_loss,
            "loss did not drop: {} -> {}",
            first.mean_loss,
            last.mean_loss
        );
    }

    #[test]
    fn epoch_stats_report_wall_time_and_throughput() {
        let (mut ps, xs, ys) = toy_problem();
        let trainer = Trainer::new(TrainConfig {
            epochs: 1,
            batch_size: 16,
            ..Default::default()
        });
        let mut opt = Adam::new(0.05);
        let loss_fn = |ps: &ParamStore, idx: &[usize]| logistic_loss(ps, idx, &xs, &ys);
        let stats = trainer.run_epoch(&mut ps, &mut opt, xs.len(), 0, &loss_fn);
        assert!(
            stats.wall_s > 0.0 && stats.wall_s.is_finite(),
            "wall_s must be positive and finite: {}",
            stats.wall_s
        );
        assert!(
            stats.samples_per_s > 0.0 && stats.samples_per_s.is_finite(),
            "samples_per_s must be positive and finite: {}",
            stats.samples_per_s
        );
        // Throughput and wall time must be mutually consistent.
        let implied = xs.len() as f32 / stats.wall_s;
        assert!(
            (stats.samples_per_s - implied).abs() <= 1e-3 * implied,
            "samples_per_s {} inconsistent with wall_s {}",
            stats.samples_per_s,
            stats.wall_s
        );
    }

    #[test]
    fn parallel_shards_match_serial_gradients() {
        let (ps, xs, ys) = toy_problem();
        let loss_fn = |ps: &ParamStore, idx: &[usize]| logistic_loss(ps, idx, &xs, &ys);
        let batch: Vec<usize> = (0..32).collect();
        let serial = Trainer::new(TrainConfig {
            threads: 1,
            ..Default::default()
        });
        let parallel = Trainer::new(TrainConfig {
            threads: 4,
            ..Default::default()
        });
        let (l1, g1) = serial.batch_gradients(&ps, &batch, &loss_fn);
        let (l2, g2) = parallel.batch_gradients(&ps, &batch, &loss_fn);
        assert!((l1 - l2).abs() < 1e-6, "{l1} vs {l2}");
        for (id, g) in &g1 {
            elda_tensor::testutil::assert_allclose(g, &g2[id], 1e-4, 1e-6);
        }
    }

    #[test]
    fn fit_restores_best_checkpoint() {
        let (mut ps, xs, ys) = toy_problem();
        let trainer = Trainer::new(TrainConfig {
            epochs: 5,
            batch_size: 16,
            patience: None,
            ..Default::default()
        });
        let mut opt = Adam::new(0.05);
        let loss_fn = |ps: &ParamStore, idx: &[usize]| logistic_loss(ps, idx, &xs, &ys);
        // Adversarial validation score: epoch 2 is "best", later ones worse.
        let mut calls = 0;
        let mut snapshots: Vec<String> = Vec::new();
        let (history, best) = trainer.fit(&mut ps, &mut opt, xs.len(), &loss_fn, &mut |ps| {
            snapshots.push(ps.to_json());
            calls += 1;
            if calls == 3 {
                10.0
            } else {
                1.0
            }
        });
        assert_eq!(history.len(), 5);
        assert_eq!(best, 10.0);
        // The store must equal the epoch-3 (index 2) snapshot.
        assert_eq!(ps.to_json(), snapshots[2]);
    }

    #[test]
    fn early_stopping_respects_patience() {
        let (mut ps, xs, ys) = toy_problem();
        let trainer = Trainer::new(TrainConfig {
            epochs: 50,
            batch_size: 16,
            patience: Some(2),
            ..Default::default()
        });
        let mut opt = Adam::new(0.01);
        let loss_fn = |ps: &ParamStore, idx: &[usize]| logistic_loss(ps, idx, &xs, &ys);
        // Validation never improves after the first epoch.
        let mut first = true;
        let (history, _) = trainer.fit(&mut ps, &mut opt, xs.len(), &loss_fn, &mut |_| {
            if first {
                first = false;
                1.0
            } else {
                0.0
            }
        });
        assert_eq!(history.len(), 3, "1 best epoch + 2 stale epochs");
    }
}
