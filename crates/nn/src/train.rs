//! Mini-batch training loop with optional shard-parallel gradients,
//! validation-based early stopping, durable checkpoint/resume and
//! health-triggered auto-recovery.

use crate::checkpoint::{scan_resume, Checkpoint, CheckpointConfig};
use crate::faults;
use crate::optim::{clip_global_norm, Optimizer, OptimizerState};
use crate::params::ParamStore;
use elda_autodiff::ParamId;
use elda_obs::{HealthConfig, HealthMonitor, HealthStatus, Incident, TensorStats};
use elda_tensor::{pool, Tensor};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Instant;

/// Fixed shard width (in samples) for shard-parallel gradient computation.
///
/// A batch is always split into `ceil(len / GRAD_SHARD)` shards regardless
/// of the configured thread count — threads only bound how many shards are
/// differentiated *concurrently*. Combined with the fixed shard-order
/// weighted average in the combine step, this makes training bit-identical
/// at any [`TrainConfig::threads`] setting.
pub const GRAD_SHARD: usize = 16;

/// Training-loop configuration.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size (the paper uses 64).
    pub batch_size: usize,
    /// Seed for the per-epoch shuffle (combined with the epoch index).
    pub shuffle_seed: u64,
    /// Optional global-norm gradient clipping.
    pub clip_norm: Option<f32>,
    /// Maximum worker threads for shard-parallel gradient computation;
    /// `0` = auto-detect from the machine, `1` = serial. Shard *structure*
    /// is fixed by [`GRAD_SHARD`] independent of this setting, so changing
    /// it never changes the numbers — only the wall clock.
    pub threads: usize,
    /// Early-stopping patience in epochs (None = run all epochs). Applies
    /// only to [`Trainer::fit`] with a validation scorer.
    pub patience: Option<usize>,
    /// Print one line per epoch.
    pub verbose: bool,
    /// Health-monitoring thresholds; `Some` turns on per-epoch loss /
    /// gradient-norm / update-ratio / parameter-stats checks and the
    /// autodiff non-finite sentinel. `None` (the default) keeps training
    /// entirely un-monitored — unless `recovery` is set, which arms the
    /// monitor with default thresholds (recovery consumes its verdicts).
    pub health: Option<HealthConfig>,
    /// Durable checkpointing (write every N epochs + on best-val
    /// improvement, resume from the newest intact file). `None` keeps
    /// training purely in-memory.
    pub checkpoint: Option<CheckpointConfig>,
    /// Health-triggered auto-recovery: roll back to the last good state
    /// and retry with a lowered learning rate when an epoch goes bad.
    pub recovery: Option<RecoveryPolicy>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 20,
            batch_size: 64,
            shuffle_seed: 0,
            clip_norm: Some(5.0),
            threads: 1,
            patience: Some(5),
            verbose: false,
            health: None,
            checkpoint: None,
            recovery: None,
        }
    }
}

/// What [`Trainer::fit`] does when the health monitor (or a non-finite
/// mean loss) condemns an epoch: restore the last good parameters and
/// optimizer state, multiply the learning rate by `lr_factor`, and retry
/// the same epoch — at most `max_retries` times per run and never below
/// `min_lr`.
#[derive(Debug, Clone)]
pub struct RecoveryPolicy {
    /// Total rollbacks allowed per run.
    pub max_retries: usize,
    /// Learning-rate multiplier applied on each rollback (backoff).
    pub lr_factor: f32,
    /// Give up instead of retrying below this learning rate.
    pub min_lr: f32,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_retries: 3,
            lr_factor: 0.5,
            min_lr: 1e-6,
        }
    }
}

/// One recovery rollback, as recorded by [`Trainer::fit`] and emitted as a
/// `recovery` trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryEvent {
    /// The epoch whose attempt was condemned and retried.
    pub epoch: usize,
    /// Last good epoch rolled back to (`None` = the pre-training state).
    pub rollback_to: Option<usize>,
    /// Learning rate before the backoff.
    pub old_lr: f32,
    /// Learning rate after the backoff.
    pub new_lr: f32,
    /// 1-based rollback count within the run.
    pub retry: usize,
    /// What condemned the epoch (non-finite loss or a health verdict).
    pub cause: String,
}

impl RecoveryEvent {
    /// Builds the `recovery` trace event for this rollback.
    pub fn to_event(&self) -> elda_obs::TraceEvent {
        let mut ev = elda_obs::TraceEvent::new("recovery")
            .with("epoch", self.epoch)
            .with("retry", self.retry)
            .with("old_lr", self.old_lr)
            .with("new_lr", self.new_lr)
            .with("cause", self.cause.as_str());
        if let Some(to) = self.rollback_to {
            ev = ev.with("rollback_to", to);
        }
        ev
    }

    /// Reads a rollback back from a `recovery` trace event (the inverse of
    /// [`RecoveryEvent::to_event`]); `None` for other event kinds.
    pub fn from_event(ev: &elda_obs::TraceEvent) -> Option<RecoveryEvent> {
        if ev.kind != "recovery" {
            return None;
        }
        Some(RecoveryEvent {
            epoch: ev.num("epoch")? as usize,
            rollback_to: ev.num("rollback_to").map(|e| e as usize),
            old_lr: ev.num("old_lr")? as f32,
            new_lr: ev.num("new_lr")? as f32,
            retry: ev.num("retry")? as usize,
            cause: ev.str_field("cause").unwrap_or_default().to_string(),
        })
    }
}

/// Per-epoch summary returned by [`Trainer::run_epoch`].
#[derive(Debug, Clone)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss over the epoch's batches.
    pub mean_loss: f32,
    /// Number of optimizer steps taken.
    pub batches: usize,
    /// Mean pre-clip gradient norm (diagnostic for divergence).
    pub mean_grad_norm: f32,
    /// Wall-clock duration of the epoch in seconds.
    pub wall_s: f32,
    /// Training throughput: samples processed per wall-clock second.
    pub samples_per_s: f32,
    /// Health verdict for this epoch; `None` when monitoring is off
    /// ([`TrainConfig::health`] unset).
    pub health: Option<HealthStatus>,
}

/// Throughput that saturates instead of overflowing: tiny cohorts in tests
/// can finish an epoch in (rounded) zero wall time, which would otherwise
/// divide to `inf` (or NaN for zero samples).
fn saturating_throughput(n_samples: usize, wall_s: f32) -> f32 {
    let raw = n_samples as f32 / wall_s;
    if raw.is_finite() {
        raw
    } else {
        f32::MAX
    }
}

/// The loss closure contract: given the (read-only) parameter store and a
/// set of sample indices, produce the mean loss over those samples and the
/// gradient of that mean loss per parameter.
pub type LossFn<'a> = dyn Fn(&ParamStore, &[usize]) -> (f32, HashMap<ParamId, Tensor>) + Sync + 'a;

/// Drives epochs of mini-batch SGD-family training.
pub struct Trainer {
    cfg: TrainConfig,
    /// Present when [`TrainConfig::health`] is set. Mutex-wrapped because
    /// `run_epoch` takes `&self`; only end-of-epoch code locks it.
    monitor: Option<Mutex<HealthMonitor>>,
    /// Rollbacks performed by [`Trainer::fit`]'s recovery policy.
    recoveries: Mutex<Vec<RecoveryEvent>>,
}

impl Trainer {
    /// A trainer with the given configuration. A recovery policy without
    /// explicit health thresholds arms the monitor with defaults — recovery
    /// is driven by its verdicts.
    pub fn new(cfg: TrainConfig) -> Self {
        let monitor = cfg
            .health
            .clone()
            .or_else(|| cfg.recovery.as_ref().map(|_| HealthConfig::default()))
            .map(|hc| Mutex::new(HealthMonitor::new(hc)));
        Trainer {
            cfg,
            monitor,
            recoveries: Mutex::new(Vec::new()),
        }
    }

    /// Recovery rollbacks performed so far (empty without a
    /// [`TrainConfig::recovery`] policy or when nothing went wrong).
    pub fn recoveries(&self) -> Vec<RecoveryEvent> {
        self.recoveries.lock().expect("recovery log lock").clone()
    }

    /// The active configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.cfg
    }

    /// Health incidents recorded so far (empty when monitoring is off or
    /// nothing was flagged).
    pub fn health_incidents(&self) -> Vec<Incident> {
        self.monitor
            .as_ref()
            .map(|m| m.lock().expect("health monitor lock").incidents().to_vec())
            .unwrap_or_default()
    }

    /// Worst health verdict across the run ([`HealthStatus::Healthy`] when
    /// monitoring is off or nothing was flagged).
    pub fn health_overall(&self) -> HealthStatus {
        self.monitor
            .as_ref()
            .map(|m| m.lock().expect("health monitor lock").overall())
            .unwrap_or(HealthStatus::Healthy)
    }

    /// One pass over `n_samples` training samples.
    ///
    /// The loss closure is invoked per fixed-width shard (see
    /// [`GRAD_SHARD`]); with `threads > 1` (or `0` = auto) shards of each
    /// batch are differentiated on the shared worker pool (the store is
    /// only read during the pass) and their gradients combined in shard
    /// order by shard-size-weighted average before a single optimizer step.
    pub fn run_epoch(
        &self,
        ps: &mut ParamStore,
        opt: &mut dyn Optimizer,
        n_samples: usize,
        epoch: usize,
        loss_fn: &LossFn<'_>,
    ) -> EpochStats {
        assert!(n_samples > 0, "cannot train on zero samples");
        let mut indices: Vec<usize> = (0..n_samples).collect();
        let mut rng = StdRng::seed_from_u64(self.cfg.shuffle_seed.wrapping_add(epoch as u64));
        indices.shuffle(&mut rng);

        let profiling = elda_obs::enabled();
        let monitoring = self.monitor.is_some();
        if monitoring {
            // Arm the tape's non-finite sentinel so the first NaN/Inf op is
            // named instead of surfacing epochs later as a garbage loss.
            elda_autodiff::sentinel::set_enabled(true);
            if epoch == 0 {
                elda_autodiff::sentinel::clear();
            }
        }
        // Epoch-start parameter snapshot for update-ratio telemetry.
        let param_start: Vec<(ParamId, String, Tensor)> = if monitoring {
            ps.iter()
                .map(|p| (p.id, p.name.to_string(), p.value.clone()))
                .collect()
        } else {
            Vec::new()
        };
        let mut param_grad_norms: HashMap<ParamId, f64> = HashMap::new();
        let epoch_start = Instant::now();
        let mut total_loss = 0.0f64;
        let mut total_norm = 0.0f64;
        let mut batches = 0usize;
        for batch in indices.chunks(self.cfg.batch_size) {
            faults::maybe_crash(epoch, batches);
            let batch_start = profiling.then(Instant::now);
            let (loss, mut grads) = self.batch_gradients(ps, batch, loss_fn);
            faults::maybe_corrupt_grads(epoch, &mut grads);
            if monitoring {
                // Pre-clip per-parameter norms: clipping caps the global
                // norm, so post-clip values could never reveal an explosion.
                for (id, g) in &grads {
                    let sq: f64 = g.data().iter().map(|&x| (x as f64) * (x as f64)).sum();
                    *param_grad_norms.entry(*id).or_insert(0.0) += sq.sqrt();
                }
            }
            let norm = match self.cfg.clip_norm {
                Some(max) => clip_global_norm(&mut grads, max),
                None => grads
                    .values()
                    .map(|g| g.data().iter().map(|&x| (x * x) as f64).sum::<f64>())
                    .sum::<f64>()
                    .sqrt() as f32,
            };
            opt.step(ps, &grads);
            if let Some(start) = batch_start {
                let elapsed = start.elapsed();
                elda_obs::global().record("train", "batch", elapsed, batch.len() as u64);
                elda_obs::emit(
                    &elda_obs::TraceEvent::new("batch")
                        .with("epoch", epoch)
                        .with("batch", batches)
                        .with("loss", loss)
                        .with("grad_norm", norm)
                        .with("wall_ms", elapsed.as_secs_f64() * 1e3),
                );
            }
            total_loss += loss as f64;
            total_norm += norm as f64;
            batches += 1;
        }
        let wall_s = epoch_start.elapsed().as_secs_f32();
        let mut stats = EpochStats {
            epoch,
            mean_loss: (total_loss / batches as f64) as f32,
            batches,
            mean_grad_norm: (total_norm / batches as f64) as f32,
            wall_s,
            samples_per_s: saturating_throughput(n_samples, wall_s),
            health: None,
        };
        if let Some(monitor) = &self.monitor {
            let mut mon = monitor.lock().expect("health monitor lock");
            // First the sentinel: a named non-finite op is the most precise
            // diagnosis, so it should precede the derived loss/grad checks.
            if let Some(nf) = elda_autodiff::sentinel::take() {
                mon.observe_nonfinite_op(epoch, &nf.subject(), &nf.operands);
            }
            mon.observe_loss(epoch, stats.mean_loss);
            mon.observe_grad(epoch, "grad.global", stats.mean_grad_norm);
            for (id, name, start_value) in &param_start {
                if let Some(acc) = param_grad_norms.get(id) {
                    let mean_norm = (acc / batches as f64) as f32;
                    mon.observe_grad(epoch, &format!("grad.{name}"), mean_norm);
                }
                let current = ps.value(*id);
                let mut delta_sq = 0.0f64;
                let mut start_sq = 0.0f64;
                for (&c, &s) in current.data().iter().zip(start_value.data()) {
                    delta_sq += ((c - s) as f64) * ((c - s) as f64);
                    start_sq += (s as f64) * (s as f64);
                }
                let ratio = (delta_sq.sqrt() / start_sq.sqrt().max(1e-12)) as f32;
                mon.observe_update_ratio(epoch, name, ratio);
                let tstats = TensorStats::compute(current.data());
                mon.observe_stats(epoch, name, &tstats);
                if profiling {
                    elda_obs::emit(&tstats.to_event(name, epoch));
                }
            }
            stats.health = Some(mon.status_at(epoch));
        }
        if profiling {
            let mut ev = elda_obs::TraceEvent::new("epoch")
                .with("epoch", stats.epoch)
                .with("mean_loss", stats.mean_loss)
                .with("batches", stats.batches)
                .with("mean_grad_norm", stats.mean_grad_norm)
                .with("wall_ms", (wall_s as f64) * 1e3)
                .with("samples_per_s", stats.samples_per_s);
            if let Some(health) = stats.health {
                ev = ev.with("health", health.key());
            }
            elda_obs::emit(&ev);
            // Per-epoch aggregates fed by model code via `elda_obs::stat_add`
            // (e.g. attention entropy from elda-core) drain into one
            // `attention` event per series, then reset for the next epoch.
            for row in elda_obs::global().stat_take_prefix("attention.") {
                elda_obs::emit(
                    &elda_obs::TraceEvent::new("attention")
                        .with("epoch", epoch)
                        .with(
                            "name",
                            row.name.strip_prefix("attention.").unwrap_or(row.name),
                        )
                        .with("mean", row.acc.mean())
                        .with("min", row.acc.min)
                        .with("max", row.acc.max)
                        .with("n", row.acc.count),
                );
            }
        }
        if self.cfg.verbose {
            eprintln!(
                "epoch {:>3}: loss {:.5}  grad-norm {:.3}  ({} batches, {:.2}s, {:.0} samples/s)",
                stats.epoch,
                stats.mean_loss,
                stats.mean_grad_norm,
                stats.batches,
                stats.wall_s,
                stats.samples_per_s
            );
        }
        stats
    }

    /// Computes the (possibly shard-parallel) mean loss and gradients for
    /// one batch of indices.
    ///
    /// The batch splits into fixed [`GRAD_SHARD`]-sample shards — a
    /// function of the batch alone, never of `cfg.threads` — and the shard
    /// results are combined in shard order, so the output is bit-identical
    /// at any thread count.
    fn batch_gradients(
        &self,
        ps: &ParamStore,
        batch: &[usize],
        loss_fn: &LossFn<'_>,
    ) -> (f32, HashMap<ParamId, Tensor>) {
        let shards: Vec<&[usize]> = batch.chunks(GRAD_SHARD).collect();
        if shards.len() <= 1 {
            return loss_fn(ps, batch);
        }
        let workers = pool::resolve(self.cfg.threads);
        let results: Vec<(usize, f32, HashMap<ParamId, Tensor>)> =
            pool::map_jobs_n(workers, shards.len(), |i| {
                let shard = shards[i];
                let (loss, grads) = loss_fn(ps, shard);
                (shard.len(), loss, grads)
            });
        // Shard-size-weighted combination in fixed shard order: each shard
        // reports the mean over its samples, so the batch mean is
        // Σ (n_i / N) · shard_i.
        let total: usize = results.iter().map(|(n, _, _)| n).sum();
        let mut loss = 0.0f32;
        let mut combined: HashMap<ParamId, Tensor> = HashMap::new();
        for (n, shard_loss, shard_grads) in results {
            let w = n as f32 / total as f32;
            loss += w * shard_loss;
            for (id, g) in shard_grads {
                match combined.get_mut(&id) {
                    Some(acc) => acc.axpy_assign(w, &g),
                    None => {
                        combined.insert(id, g.scale(w));
                    }
                }
            }
        }
        (loss, combined)
    }

    /// Trains for up to `cfg.epochs` epochs, scoring on a validation metric
    /// after each (higher is better), keeping the best checkpoint and
    /// restoring it at the end. Stops early after `cfg.patience` epochs
    /// without improvement. Returns `(epoch stats, best validation score)`.
    ///
    /// With [`TrainConfig::checkpoint`] set, the full training state is
    /// written durably every `every` epochs and on each best-val
    /// improvement; with `resume` also set, training continues bit-for-bit
    /// from the newest intact checkpoint (corrupt files are skipped with a
    /// warning). With [`TrainConfig::recovery`] set, an epoch condemned by
    /// the health monitor (or a non-finite mean loss) is rolled back to the
    /// last good state and retried with a lowered learning rate.
    pub fn fit(
        &self,
        ps: &mut ParamStore,
        opt: &mut dyn Optimizer,
        n_samples: usize,
        loss_fn: &LossFn<'_>,
        val_fn: &mut dyn FnMut(&ParamStore) -> f32,
    ) -> (Vec<EpochStats>, f32) {
        let mut history = Vec::with_capacity(self.cfg.epochs);
        let mut best_score = f32::NEG_INFINITY;
        let mut best_checkpoint: Option<String> = None;
        let mut stale = 0usize;
        let mut start_epoch = 0usize;

        if let Some(ck) = self.cfg.checkpoint.as_ref().filter(|ck| ck.resume) {
            let scan = scan_resume(&ck.dir, &ck.fingerprint)
                .unwrap_or_else(|e| panic!("cannot resume: {e}"));
            for warning in &scan.skipped {
                eprintln!("warning: skipping checkpoint: {warning}");
            }
            if let Some((ckpt, path)) = scan.found {
                ckpt.apply(ps, opt).unwrap_or_else(|e| {
                    panic!("cannot resume from {}: {e}", path.display());
                });
                start_epoch = ckpt.epoch + 1;
                best_score = ckpt.best_score.unwrap_or(f32::NEG_INFINITY);
                stale = ckpt.stale;
                best_checkpoint = ckpt.best_params_json();
                if self.cfg.verbose {
                    eprintln!(
                        "resuming from {} (epoch {}, lr {:.2e})",
                        path.display(),
                        ckpt.epoch,
                        opt.learning_rate()
                    );
                }
            } else if self.cfg.verbose {
                eprintln!(
                    "no intact checkpoint in {} — starting from scratch",
                    ck.dir.display()
                );
            }
        }

        // In-memory rollback point for recovery: (params, optimizer state,
        // last good epoch). Maintained only when a policy is configured —
        // snapshotting every epoch is not free.
        let mut last_good: Option<(String, OptimizerState, Option<usize>)> =
            self.cfg.recovery.as_ref().map(|_| {
                (
                    ps.to_json(),
                    opt.export_state(ps),
                    start_epoch.checked_sub(1),
                )
            });
        let mut retries_used = 0usize;

        let mut epoch = start_epoch;
        while epoch < self.cfg.epochs {
            let stats = self.run_epoch(ps, opt, n_samples, epoch, loss_fn);
            let verdict = stats.health.unwrap_or(HealthStatus::Healthy);
            let condemned = !stats.mean_loss.is_finite() || verdict >= HealthStatus::Diverging;
            if condemned {
                if let Some(policy) = &self.cfg.recovery {
                    if self.try_rollback(
                        ps,
                        opt,
                        policy,
                        &stats,
                        last_good.as_ref(),
                        &mut retries_used,
                    ) {
                        continue; // retry the same epoch at the lowered lr
                    }
                }
            }
            history.push(stats.clone());
            let score = val_fn(ps);
            if elda_obs::enabled() {
                elda_obs::emit(
                    &elda_obs::TraceEvent::new("val")
                        .with("epoch", epoch)
                        .with("score", score),
                );
            }
            if let Some(monitor) = &self.monitor {
                monitor
                    .lock()
                    .expect("health monitor lock")
                    .observe_val(epoch, score);
            }
            let improved = score > best_score;
            if improved {
                best_score = score;
                best_checkpoint = Some(ps.to_json());
                stale = 0;
            } else {
                stale += 1;
            }
            if let Some(ck) = &self.cfg.checkpoint {
                let periodic = ck.every > 0 && (epoch + 1).is_multiple_of(ck.every);
                // Never checkpoint a condemned epoch (recovery off or
                // exhausted): a durable file full of NaN weights could not
                // be resumed from anyway.
                if (periodic || improved) && !condemned {
                    let ckpt = Checkpoint::capture(
                        ps,
                        &*opt,
                        epoch,
                        ck,
                        self.cfg.shuffle_seed,
                        best_score,
                        stale,
                        best_checkpoint.as_deref(),
                    );
                    match ckpt.save(ck) {
                        Ok(path) => {
                            if self.cfg.verbose {
                                eprintln!("checkpoint written: {}", path.display());
                            }
                        }
                        // Checkpointing failures degrade durability, not
                        // training — warn and continue.
                        Err(e) => eprintln!("warning: checkpoint write failed: {e}"),
                    }
                }
            }
            if !condemned {
                if let Some(slot) = last_good.as_mut() {
                    *slot = (ps.to_json(), opt.export_state(ps), Some(epoch));
                }
            }
            if !improved {
                if let Some(patience) = self.cfg.patience {
                    if stale >= patience {
                        break;
                    }
                }
            }
            epoch += 1;
        }
        if let Some(ckpt) = best_checkpoint {
            ps.load_json(&ckpt).expect("restoring best checkpoint");
        }
        (history, best_score)
    }

    /// Attempts one recovery rollback for a condemned epoch. Returns true
    /// when the rollback happened (the caller retries the epoch), false
    /// when the retry budget or learning-rate floor is exhausted.
    fn try_rollback(
        &self,
        ps: &mut ParamStore,
        opt: &mut dyn Optimizer,
        policy: &RecoveryPolicy,
        stats: &EpochStats,
        last_good: Option<&(String, OptimizerState, Option<usize>)>,
        retries_used: &mut usize,
    ) -> bool {
        let Some((params, opt_state, good_epoch)) = last_good else {
            return false;
        };
        let old_lr = opt.learning_rate();
        let new_lr = old_lr * policy.lr_factor;
        if *retries_used >= policy.max_retries || new_lr < policy.min_lr {
            eprintln!(
                "warning: epoch {} unhealthy but recovery exhausted \
                 ({} retries used, lr {old_lr:.2e})",
                stats.epoch, retries_used
            );
            return false;
        }
        *retries_used += 1;
        ps.load_json(params)
            .expect("recovery rollback: last-good params must load");
        opt.import_state(ps, opt_state)
            .expect("recovery rollback: last-good optimizer state must load");
        opt.set_learning_rate(new_lr);
        let cause = if !stats.mean_loss.is_finite() {
            format!("non-finite mean loss {}", stats.mean_loss)
        } else {
            format!(
                "health verdict {}",
                stats.health.unwrap_or(HealthStatus::Healthy).key()
            )
        };
        let event = RecoveryEvent {
            epoch: stats.epoch,
            rollback_to: *good_epoch,
            old_lr,
            new_lr,
            retry: *retries_used,
            cause,
        };
        elda_obs::emit(&event.to_event());
        if self.cfg.verbose {
            eprintln!(
                "recovery: epoch {} condemned ({}); rolled back to {} \
                 and retrying at lr {new_lr:.2e}",
                event.epoch,
                event.cause,
                match event.rollback_to {
                    Some(e) => format!("epoch {e}"),
                    None => "the initial state".to_string(),
                }
            );
        }
        if let Some(monitor) = &self.monitor {
            monitor
                .lock()
                .expect("health monitor lock")
                .begin_retry(event.epoch);
        }
        self.recoveries
            .lock()
            .expect("recovery log lock")
            .push(event);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Adam;
    use crate::FaultPlan;
    use elda_autodiff::Tape;

    /// Builds a linearly separable 2-feature dataset and a logistic
    /// regression loss closure over it.
    fn toy_problem() -> (ParamStore, Vec<Tensor>, Vec<f32>) {
        let mut ps = ParamStore::new();
        ps.register("w", Tensor::zeros(&[2, 1]));
        ps.register("b", Tensor::zeros(&[1]));
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..64 {
            let x0 = (i % 8) as f32 / 4.0 - 1.0;
            let x1 = (i / 8) as f32 / 4.0 - 1.0;
            xs.push(Tensor::from_vec(vec![x0, x1], &[2]));
            ys.push(if x0 + x1 > 0.0 { 1.0 } else { 0.0 });
        }
        (ps, xs, ys)
    }

    fn logistic_loss(
        ps: &ParamStore,
        idx: &[usize],
        xs: &[Tensor],
        ys: &[f32],
    ) -> (f32, HashMap<ParamId, Tensor>) {
        let mut tape = Tape::new();
        let n = idx.len();
        let xb = Tensor::from_vec(
            idx.iter().flat_map(|&i| xs[i].data().to_vec()).collect(),
            &[n, 2],
        );
        let yb = Tensor::from_vec(idx.iter().map(|&i| ys[i]).collect(), &[n, 1]);
        let x = tape.leaf(xb);
        let w = ps.bind(&mut tape, ps.by_name("w").unwrap().id);
        let b = ps.bind(&mut tape, ps.by_name("b").unwrap().id);
        let z = tape.matmul(x, w);
        let z = tape.add(z, b);
        let loss = tape.bce_with_logits(z, &yb);
        let value = tape.value(loss).item();
        (value, tape.backward(loss).into_param_map())
    }

    #[test]
    fn training_reduces_loss() {
        let (mut ps, xs, ys) = toy_problem();
        let trainer = Trainer::new(TrainConfig {
            epochs: 30,
            batch_size: 16,
            ..Default::default()
        });
        let mut opt = Adam::new(0.05);
        let loss_fn = |ps: &ParamStore, idx: &[usize]| logistic_loss(ps, idx, &xs, &ys);
        let first = trainer.run_epoch(&mut ps, &mut opt, xs.len(), 0, &loss_fn);
        let mut last = first.clone();
        for e in 1..30 {
            last = trainer.run_epoch(&mut ps, &mut opt, xs.len(), e, &loss_fn);
        }
        assert!(
            last.mean_loss < 0.5 * first.mean_loss,
            "loss did not drop: {} -> {}",
            first.mean_loss,
            last.mean_loss
        );
    }

    #[test]
    fn epoch_stats_report_wall_time_and_throughput() {
        let (mut ps, xs, ys) = toy_problem();
        let trainer = Trainer::new(TrainConfig {
            epochs: 1,
            batch_size: 16,
            ..Default::default()
        });
        let mut opt = Adam::new(0.05);
        let loss_fn = |ps: &ParamStore, idx: &[usize]| logistic_loss(ps, idx, &xs, &ys);
        let stats = trainer.run_epoch(&mut ps, &mut opt, xs.len(), 0, &loss_fn);
        assert!(
            stats.wall_s >= 0.0 && stats.wall_s.is_finite(),
            "wall_s must be non-negative and finite: {}",
            stats.wall_s
        );
        assert!(
            stats.samples_per_s > 0.0 && stats.samples_per_s.is_finite(),
            "samples_per_s must be positive and finite even when wall time \
             rounds to zero: {}",
            stats.samples_per_s
        );
        // When the epoch took measurable time, throughput and wall time
        // must be mutually consistent; on a zero-duration epoch the
        // throughput saturates instead (covered separately below).
        if stats.wall_s > 0.0 {
            let implied = xs.len() as f32 / stats.wall_s;
            assert!(
                (stats.samples_per_s - implied).abs() <= 1e-3 * implied,
                "samples_per_s {} inconsistent with wall_s {}",
                stats.samples_per_s,
                stats.wall_s
            );
        }
    }

    #[test]
    fn throughput_saturates_on_zero_wall_time() {
        assert_eq!(saturating_throughput(64, 0.0), f32::MAX);
        assert_eq!(
            saturating_throughput(0, 0.0),
            f32::MAX,
            "0/0 must not be NaN"
        );
        assert_eq!(saturating_throughput(10, 2.0), 5.0);
        assert!(saturating_throughput(usize::MAX, f32::MIN_POSITIVE).is_finite());
    }

    // Health scenarios share the process-global autodiff sentinel, so they
    // run inside ONE test fn, serially.
    #[test]
    fn health_monitor_flags_divergence_and_dead_params_but_not_healthy_runs() {
        use crate::optim::Sgd;

        // Healthy: a converging run produces zero incidents.
        let (mut ps, xs, ys) = toy_problem();
        let trainer = Trainer::new(TrainConfig {
            epochs: 5,
            batch_size: 16,
            health: Some(HealthConfig::default()),
            ..Default::default()
        });
        let mut opt = Adam::new(0.05);
        let loss_fn = |ps: &ParamStore, idx: &[usize]| logistic_loss(ps, idx, &xs, &ys);
        for e in 0..5 {
            let stats = trainer.run_epoch(&mut ps, &mut opt, xs.len(), e, &loss_fn);
            assert_eq!(stats.health, Some(HealthStatus::Healthy), "epoch {e}");
        }
        assert!(
            trainer.health_incidents().is_empty(),
            "healthy run flagged: {:?}",
            trainer.health_incidents()
        );
        assert_eq!(trainer.health_overall(), HealthStatus::Healthy);

        // Diverging: an absurd learning rate blows the loss past the
        // ceiling within the first epochs.
        let (mut ps, xs, ys) = toy_problem();
        let trainer = Trainer::new(TrainConfig {
            epochs: 4,
            batch_size: 16,
            health: Some(HealthConfig::default()),
            ..Default::default()
        });
        let mut opt = Sgd::new(1.0e4);
        let loss_fn = |ps: &ParamStore, idx: &[usize]| logistic_loss(ps, idx, &xs, &ys);
        for e in 0..4 {
            trainer.run_epoch(&mut ps, &mut opt, xs.len(), e, &loss_fn);
        }
        let overall = trainer.health_overall();
        assert!(
            matches!(overall, HealthStatus::Diverging | HealthStatus::NonFinite),
            "absurd lr must be flagged, got {overall:?}: {:?}",
            trainer.health_incidents()
        );

        // Dead params: lr = 0 freezes every weight; after `dead_patience`
        // epochs each parameter is reported exactly once.
        let (mut ps, xs, ys) = toy_problem();
        let trainer = Trainer::new(TrainConfig {
            epochs: 4,
            batch_size: 16,
            health: Some(HealthConfig::default()),
            ..Default::default()
        });
        let mut opt = Sgd::new(0.0);
        let loss_fn = |ps: &ParamStore, idx: &[usize]| logistic_loss(ps, idx, &xs, &ys);
        let history: Vec<EpochStats> = (0..4)
            .map(|e| trainer.run_epoch(&mut ps, &mut opt, xs.len(), e, &loss_fn))
            .collect();
        // Incidents attach to the epoch where the streak first crosses
        // `dead_patience` (index 2 with the default of 3); afterwards the
        // dedup keeps later epochs quiet.
        assert_eq!(history[2].health, Some(HealthStatus::DeadParam));
        assert_eq!(history[3].health, Some(HealthStatus::Healthy));
        let incidents = trainer.health_incidents();
        let dead: Vec<_> = incidents
            .iter()
            .filter(|i| i.status == HealthStatus::DeadParam)
            .collect();
        assert_eq!(
            dead.len(),
            2,
            "one incident per frozen param: {incidents:?}"
        );
        // epochs are 0-based; default dead_patience = 3 → first flagged at
        // epoch index 2.
        assert!(dead.iter().all(|i| i.epoch == 2), "{dead:?}");

        elda_autodiff::sentinel::set_enabled(false);
        elda_autodiff::sentinel::clear();
    }

    #[test]
    fn parallel_shards_are_bit_identical_to_serial() {
        // Sharding is fixed by GRAD_SHARD, so thread count may only change
        // scheduling — the loss and every gradient must match *bitwise*.
        let (ps, xs, ys) = toy_problem();
        let loss_fn = |ps: &ParamStore, idx: &[usize]| logistic_loss(ps, idx, &xs, &ys);
        let batch: Vec<usize> = (0..37).collect(); // 3 shards, last one ragged
        let serial = Trainer::new(TrainConfig {
            threads: 1,
            ..Default::default()
        });
        let (l1, g1) = serial.batch_gradients(&ps, &batch, &loss_fn);
        for threads in [2, 4, 0] {
            let parallel = Trainer::new(TrainConfig {
                threads,
                ..Default::default()
            });
            let (l2, g2) = parallel.batch_gradients(&ps, &batch, &loss_fn);
            assert_eq!(
                l1.to_bits(),
                l2.to_bits(),
                "loss differs at threads={threads}"
            );
            assert_eq!(g1.len(), g2.len());
            for (id, g) in &g1 {
                assert_eq!(
                    g.data(),
                    g2[id].data(),
                    "gradient {id:?} differs at threads={threads}"
                );
            }
        }
    }

    #[test]
    fn fit_restores_best_checkpoint() {
        let (mut ps, xs, ys) = toy_problem();
        let trainer = Trainer::new(TrainConfig {
            epochs: 5,
            batch_size: 16,
            patience: None,
            ..Default::default()
        });
        let mut opt = Adam::new(0.05);
        let loss_fn = |ps: &ParamStore, idx: &[usize]| logistic_loss(ps, idx, &xs, &ys);
        // Adversarial validation score: epoch 2 is "best", later ones worse.
        let mut calls = 0;
        let mut snapshots: Vec<String> = Vec::new();
        let (history, best) = trainer.fit(&mut ps, &mut opt, xs.len(), &loss_fn, &mut |ps| {
            snapshots.push(ps.to_json());
            calls += 1;
            if calls == 3 {
                10.0
            } else {
                1.0
            }
        });
        assert_eq!(history.len(), 5);
        assert_eq!(best, 10.0);
        // The store must equal the epoch-3 (index 2) snapshot.
        assert_eq!(ps.to_json(), snapshots[2]);
    }

    /// Deterministic validation scorer: negative full-dataset loss, so the
    /// interrupted and uninterrupted runs see identical scores.
    fn full_loss_score(ps: &ParamStore, xs: &[Tensor], ys: &[f32]) -> f32 {
        let all: Vec<usize> = (0..xs.len()).collect();
        -logistic_loss(ps, &all, xs, ys).0
    }

    fn ckpt_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("elda-train-ckpt-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    // Checkpoint/recovery scenarios share the process-global fault plan (and
    // partly the autodiff sentinel), so they run inside ONE test fn.
    #[test]
    fn resume_is_bit_for_bit_and_recovery_rolls_back() {
        // --- Uninterrupted reference: 6 epochs, no checkpointing. --------
        let (mut ps_ref, xs, ys) = toy_problem();
        let cfg = TrainConfig {
            epochs: 6,
            batch_size: 16,
            patience: None,
            ..Default::default()
        };
        let trainer = Trainer::new(cfg.clone());
        let mut opt_ref = Adam::new(0.05);
        let loss_fn = |ps: &ParamStore, idx: &[usize]| logistic_loss(ps, idx, &xs, &ys);
        let (hist_ref, best_ref) =
            trainer.fit(&mut ps_ref, &mut opt_ref, xs.len(), &loss_fn, &mut |ps| {
                full_loss_score(ps, &xs, &ys)
            });

        // --- Interrupted run: 3 epochs with checkpoints, then a fresh
        // trainer/store/optimizer resumes to 6. ---------------------------
        let dir = ckpt_dir("resume");
        let (mut ps, _, _) = toy_problem();
        let partial = Trainer::new(TrainConfig {
            epochs: 3,
            checkpoint: Some(CheckpointConfig::new(&dir, "fp-toy")),
            ..cfg.clone()
        });
        let mut opt = Adam::new(0.05);
        partial.fit(&mut ps, &mut opt, xs.len(), &loss_fn, &mut |ps| {
            full_loss_score(ps, &xs, &ys)
        });

        let (mut ps2, _, _) = toy_problem();
        let mut opt2 = Adam::new(0.05);
        let resumed = Trainer::new(TrainConfig {
            epochs: 6,
            checkpoint: Some(CheckpointConfig {
                resume: true,
                ..CheckpointConfig::new(&dir, "fp-toy")
            }),
            ..cfg.clone()
        });
        let (hist, best) = resumed.fit(&mut ps2, &mut opt2, xs.len(), &loss_fn, &mut |ps| {
            full_loss_score(ps, &xs, &ys)
        });

        assert_eq!(hist.len(), 3, "resume continues at epoch 3");
        assert_eq!(hist[0].epoch, 3);
        assert_eq!(best, best_ref, "best score must match the reference");
        assert_eq!(
            ps2.to_json(),
            ps_ref.to_json(),
            "resumed parameters must be bit-for-bit identical"
        );
        // Losses of the overlapping epochs match exactly too.
        for (a, b) in hist_ref[3..].iter().zip(&hist) {
            assert_eq!(a.mean_loss, b.mean_loss, "epoch {}", b.epoch);
        }

        // --- Resume skips a corrupt newest checkpoint. -------------------
        // Corrupt every file except the oldest; resume must fall back to it.
        let mut epochs: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        epochs.sort();
        for path in &epochs[1..] {
            let text = std::fs::read_to_string(path).unwrap();
            std::fs::write(path, &text[..text.len() / 2]).unwrap();
        }
        let scan = crate::checkpoint::scan_resume(&dir, "fp-toy").unwrap();
        let (found, _) = scan.found.expect("oldest checkpoint still intact");
        assert_eq!(scan.skipped.len(), epochs.len() - 1);
        assert!(found.epoch < 5);
        std::fs::remove_dir_all(&dir).unwrap();

        // --- Recovery: NaN gradients at epoch 2 trigger a rollback. ------
        faults::install(FaultPlan::parse("nan_grad@2").unwrap());
        let (mut ps, xs, ys) = toy_problem();
        let trainer = Trainer::new(TrainConfig {
            epochs: 5,
            batch_size: 16,
            patience: None,
            recovery: Some(RecoveryPolicy::default()),
            ..Default::default()
        });
        let loss_fn = |ps: &ParamStore, idx: &[usize]| logistic_loss(ps, idx, &xs, &ys);
        let mut opt = Adam::new(0.05);
        let (hist, _) = trainer.fit(&mut ps, &mut opt, xs.len(), &loss_fn, &mut |ps| {
            full_loss_score(ps, &xs, &ys)
        });
        faults::clear();
        let recoveries = trainer.recoveries();
        assert_eq!(recoveries.len(), 1, "{recoveries:?}");
        assert_eq!(recoveries[0].epoch, 2);
        assert_eq!(recoveries[0].rollback_to, Some(1));
        assert!(recoveries[0].new_lr < recoveries[0].old_lr);
        assert_eq!(opt.learning_rate(), 0.025, "lr halved once");
        assert_eq!(hist.len(), 5, "all epochs completed after the retry");
        assert!(
            hist.iter().all(|s| s.mean_loss.is_finite()),
            "recorded history contains only the healthy attempts: {hist:?}"
        );
        for p in ps.iter() {
            assert!(
                p.value.data().iter().all(|x| x.is_finite()),
                "weights must end finite"
            );
        }
        // The recovery event round-trips through the trace schema.
        let ev = recoveries[0].to_event();
        let parsed = elda_obs::parse_json_line(&ev.to_json()).unwrap();
        assert_eq!(
            RecoveryEvent::from_event(&parsed),
            Some(recoveries[0].clone())
        );

        // --- Recovery budget: unrecoverable divergence gives up. ---------
        faults::clear();
        elda_autodiff::sentinel::set_enabled(false);
        elda_autodiff::sentinel::clear();
    }

    #[test]
    fn early_stopping_respects_patience() {
        let (mut ps, xs, ys) = toy_problem();
        let trainer = Trainer::new(TrainConfig {
            epochs: 50,
            batch_size: 16,
            patience: Some(2),
            ..Default::default()
        });
        let mut opt = Adam::new(0.01);
        let loss_fn = |ps: &ParamStore, idx: &[usize]| logistic_loss(ps, idx, &xs, &ys);
        // Validation never improves after the first epoch.
        let mut first = true;
        let (history, _) = trainer.fit(&mut ps, &mut opt, xs.len(), &loss_fn, &mut |_| {
            if first {
                first = false;
                1.0
            } else {
                0.0
            }
        });
        assert_eq!(history.len(), 3, "1 best epoch + 2 stale epochs");
    }
}
