//! Mini-batch training loop with optional shard-parallel gradients and
//! validation-based early stopping.

use crate::optim::{clip_global_norm, Optimizer};
use crate::params::ParamStore;
use elda_autodiff::ParamId;
use elda_obs::{HealthConfig, HealthMonitor, HealthStatus, Incident, TensorStats};
use elda_tensor::Tensor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Instant;

/// Training-loop configuration.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size (the paper uses 64).
    pub batch_size: usize,
    /// Seed for the per-epoch shuffle (combined with the epoch index).
    pub shuffle_seed: u64,
    /// Optional global-norm gradient clipping.
    pub clip_norm: Option<f32>,
    /// Worker threads for shard-parallel gradient computation; 1 = serial.
    pub threads: usize,
    /// Early-stopping patience in epochs (None = run all epochs). Applies
    /// only to [`Trainer::fit`] with a validation scorer.
    pub patience: Option<usize>,
    /// Print one line per epoch.
    pub verbose: bool,
    /// Health-monitoring thresholds; `Some` turns on per-epoch loss /
    /// gradient-norm / update-ratio / parameter-stats checks and the
    /// autodiff non-finite sentinel. `None` (the default) keeps training
    /// entirely un-monitored.
    pub health: Option<HealthConfig>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 20,
            batch_size: 64,
            shuffle_seed: 0,
            clip_norm: Some(5.0),
            threads: 1,
            patience: Some(5),
            verbose: false,
            health: None,
        }
    }
}

/// Per-epoch summary returned by [`Trainer::run_epoch`].
#[derive(Debug, Clone)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss over the epoch's batches.
    pub mean_loss: f32,
    /// Number of optimizer steps taken.
    pub batches: usize,
    /// Mean pre-clip gradient norm (diagnostic for divergence).
    pub mean_grad_norm: f32,
    /// Wall-clock duration of the epoch in seconds.
    pub wall_s: f32,
    /// Training throughput: samples processed per wall-clock second.
    pub samples_per_s: f32,
    /// Health verdict for this epoch; `None` when monitoring is off
    /// ([`TrainConfig::health`] unset).
    pub health: Option<HealthStatus>,
}

/// Throughput that saturates instead of overflowing: tiny cohorts in tests
/// can finish an epoch in (rounded) zero wall time, which would otherwise
/// divide to `inf` (or NaN for zero samples).
fn saturating_throughput(n_samples: usize, wall_s: f32) -> f32 {
    let raw = n_samples as f32 / wall_s;
    if raw.is_finite() {
        raw
    } else {
        f32::MAX
    }
}

/// The loss closure contract: given the (read-only) parameter store and a
/// set of sample indices, produce the mean loss over those samples and the
/// gradient of that mean loss per parameter.
pub type LossFn<'a> = dyn Fn(&ParamStore, &[usize]) -> (f32, HashMap<ParamId, Tensor>) + Sync + 'a;

/// Drives epochs of mini-batch SGD-family training.
pub struct Trainer {
    cfg: TrainConfig,
    /// Present when [`TrainConfig::health`] is set. Mutex-wrapped because
    /// `run_epoch` takes `&self`; only end-of-epoch code locks it.
    monitor: Option<Mutex<HealthMonitor>>,
}

impl Trainer {
    /// A trainer with the given configuration.
    pub fn new(cfg: TrainConfig) -> Self {
        let monitor = cfg
            .health
            .clone()
            .map(|hc| Mutex::new(HealthMonitor::new(hc)));
        Trainer { cfg, monitor }
    }

    /// The active configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.cfg
    }

    /// Health incidents recorded so far (empty when monitoring is off or
    /// nothing was flagged).
    pub fn health_incidents(&self) -> Vec<Incident> {
        self.monitor
            .as_ref()
            .map(|m| m.lock().expect("health monitor lock").incidents().to_vec())
            .unwrap_or_default()
    }

    /// Worst health verdict across the run ([`HealthStatus::Healthy`] when
    /// monitoring is off or nothing was flagged).
    pub fn health_overall(&self) -> HealthStatus {
        self.monitor
            .as_ref()
            .map(|m| m.lock().expect("health monitor lock").overall())
            .unwrap_or(HealthStatus::Healthy)
    }

    /// One pass over `n_samples` training samples.
    ///
    /// The loss closure is invoked per shard; with `threads > 1` shards of
    /// each batch are differentiated on scoped worker threads (the store is
    /// only read during the pass) and their gradients combined by
    /// shard-size-weighted average before a single optimizer step.
    pub fn run_epoch(
        &self,
        ps: &mut ParamStore,
        opt: &mut dyn Optimizer,
        n_samples: usize,
        epoch: usize,
        loss_fn: &LossFn<'_>,
    ) -> EpochStats {
        assert!(n_samples > 0, "cannot train on zero samples");
        let mut indices: Vec<usize> = (0..n_samples).collect();
        let mut rng = StdRng::seed_from_u64(self.cfg.shuffle_seed.wrapping_add(epoch as u64));
        indices.shuffle(&mut rng);

        let profiling = elda_obs::enabled();
        let monitoring = self.monitor.is_some();
        if monitoring {
            // Arm the tape's non-finite sentinel so the first NaN/Inf op is
            // named instead of surfacing epochs later as a garbage loss.
            elda_autodiff::sentinel::set_enabled(true);
            if epoch == 0 {
                elda_autodiff::sentinel::clear();
            }
        }
        // Epoch-start parameter snapshot for update-ratio telemetry.
        let param_start: Vec<(ParamId, String, Tensor)> = if monitoring {
            ps.iter()
                .map(|p| (p.id, p.name.to_string(), p.value.clone()))
                .collect()
        } else {
            Vec::new()
        };
        let mut param_grad_norms: HashMap<ParamId, f64> = HashMap::new();
        let epoch_start = Instant::now();
        let mut total_loss = 0.0f64;
        let mut total_norm = 0.0f64;
        let mut batches = 0usize;
        for batch in indices.chunks(self.cfg.batch_size) {
            let batch_start = profiling.then(Instant::now);
            let (loss, mut grads) = self.batch_gradients(ps, batch, loss_fn);
            if monitoring {
                // Pre-clip per-parameter norms: clipping caps the global
                // norm, so post-clip values could never reveal an explosion.
                for (id, g) in &grads {
                    let sq: f64 = g.data().iter().map(|&x| (x as f64) * (x as f64)).sum();
                    *param_grad_norms.entry(*id).or_insert(0.0) += sq.sqrt();
                }
            }
            let norm = match self.cfg.clip_norm {
                Some(max) => clip_global_norm(&mut grads, max),
                None => grads
                    .values()
                    .map(|g| g.data().iter().map(|&x| (x * x) as f64).sum::<f64>())
                    .sum::<f64>()
                    .sqrt() as f32,
            };
            opt.step(ps, &grads);
            if let Some(start) = batch_start {
                let elapsed = start.elapsed();
                elda_obs::global().record("train", "batch", elapsed, batch.len() as u64);
                elda_obs::emit(
                    &elda_obs::TraceEvent::new("batch")
                        .with("epoch", epoch)
                        .with("batch", batches)
                        .with("loss", loss)
                        .with("grad_norm", norm)
                        .with("wall_ms", elapsed.as_secs_f64() * 1e3),
                );
            }
            total_loss += loss as f64;
            total_norm += norm as f64;
            batches += 1;
        }
        let wall_s = epoch_start.elapsed().as_secs_f32();
        let mut stats = EpochStats {
            epoch,
            mean_loss: (total_loss / batches as f64) as f32,
            batches,
            mean_grad_norm: (total_norm / batches as f64) as f32,
            wall_s,
            samples_per_s: saturating_throughput(n_samples, wall_s),
            health: None,
        };
        if let Some(monitor) = &self.monitor {
            let mut mon = monitor.lock().expect("health monitor lock");
            // First the sentinel: a named non-finite op is the most precise
            // diagnosis, so it should precede the derived loss/grad checks.
            if let Some(nf) = elda_autodiff::sentinel::take() {
                mon.observe_nonfinite_op(epoch, &nf.subject(), &nf.operands);
            }
            mon.observe_loss(epoch, stats.mean_loss);
            mon.observe_grad(epoch, "grad.global", stats.mean_grad_norm);
            for (id, name, start_value) in &param_start {
                if let Some(acc) = param_grad_norms.get(id) {
                    let mean_norm = (acc / batches as f64) as f32;
                    mon.observe_grad(epoch, &format!("grad.{name}"), mean_norm);
                }
                let current = ps.value(*id);
                let mut delta_sq = 0.0f64;
                let mut start_sq = 0.0f64;
                for (&c, &s) in current.data().iter().zip(start_value.data()) {
                    delta_sq += ((c - s) as f64) * ((c - s) as f64);
                    start_sq += (s as f64) * (s as f64);
                }
                let ratio = (delta_sq.sqrt() / start_sq.sqrt().max(1e-12)) as f32;
                mon.observe_update_ratio(epoch, name, ratio);
                let tstats = TensorStats::compute(current.data());
                mon.observe_stats(epoch, name, &tstats);
                if profiling {
                    elda_obs::emit(&tstats.to_event(name, epoch));
                }
            }
            stats.health = Some(mon.status_at(epoch));
        }
        if profiling {
            let mut ev = elda_obs::TraceEvent::new("epoch")
                .with("epoch", stats.epoch)
                .with("mean_loss", stats.mean_loss)
                .with("batches", stats.batches)
                .with("mean_grad_norm", stats.mean_grad_norm)
                .with("wall_ms", (wall_s as f64) * 1e3)
                .with("samples_per_s", stats.samples_per_s);
            if let Some(health) = stats.health {
                ev = ev.with("health", health.key());
            }
            elda_obs::emit(&ev);
            // Per-epoch aggregates fed by model code via `elda_obs::stat_add`
            // (e.g. attention entropy from elda-core) drain into one
            // `attention` event per series, then reset for the next epoch.
            for row in elda_obs::global().stat_take_prefix("attention.") {
                elda_obs::emit(
                    &elda_obs::TraceEvent::new("attention")
                        .with("epoch", epoch)
                        .with(
                            "name",
                            row.name.strip_prefix("attention.").unwrap_or(row.name),
                        )
                        .with("mean", row.acc.mean())
                        .with("min", row.acc.min)
                        .with("max", row.acc.max)
                        .with("n", row.acc.count),
                );
            }
        }
        if self.cfg.verbose {
            eprintln!(
                "epoch {:>3}: loss {:.5}  grad-norm {:.3}  ({} batches, {:.2}s, {:.0} samples/s)",
                stats.epoch,
                stats.mean_loss,
                stats.mean_grad_norm,
                stats.batches,
                stats.wall_s,
                stats.samples_per_s
            );
        }
        stats
    }

    /// Computes the (possibly shard-parallel) mean loss and gradients for
    /// one batch of indices.
    fn batch_gradients(
        &self,
        ps: &ParamStore,
        batch: &[usize],
        loss_fn: &LossFn<'_>,
    ) -> (f32, HashMap<ParamId, Tensor>) {
        let threads = self.cfg.threads.max(1).min(batch.len());
        if threads == 1 {
            return loss_fn(ps, batch);
        }
        let shard_size = batch.len().div_ceil(threads);
        let shards: Vec<&[usize]> = batch.chunks(shard_size).collect();
        let results: Vec<(usize, f32, HashMap<ParamId, Tensor>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = shards
                .iter()
                .map(|shard| {
                    scope.spawn(move || {
                        let (loss, grads) = loss_fn(ps, shard);
                        (shard.len(), loss, grads)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard thread panicked"))
                .collect()
        });
        // Shard-size-weighted combination: each shard reports the mean over
        // its samples, so the batch mean is Σ (n_i / N) · shard_i.
        let total: usize = results.iter().map(|(n, _, _)| n).sum();
        let mut loss = 0.0f32;
        let mut combined: HashMap<ParamId, Tensor> = HashMap::new();
        for (n, shard_loss, shard_grads) in results {
            let w = n as f32 / total as f32;
            loss += w * shard_loss;
            for (id, g) in shard_grads {
                match combined.get_mut(&id) {
                    Some(acc) => acc.axpy_assign(w, &g),
                    None => {
                        combined.insert(id, g.scale(w));
                    }
                }
            }
        }
        (loss, combined)
    }

    /// Trains for up to `cfg.epochs` epochs, scoring on a validation metric
    /// after each (higher is better), keeping the best checkpoint and
    /// restoring it at the end. Stops early after `cfg.patience` epochs
    /// without improvement. Returns `(epoch stats, best validation score)`.
    pub fn fit(
        &self,
        ps: &mut ParamStore,
        opt: &mut dyn Optimizer,
        n_samples: usize,
        loss_fn: &LossFn<'_>,
        val_fn: &mut dyn FnMut(&ParamStore) -> f32,
    ) -> (Vec<EpochStats>, f32) {
        let mut history = Vec::with_capacity(self.cfg.epochs);
        let mut best_score = f32::NEG_INFINITY;
        let mut best_checkpoint: Option<String> = None;
        let mut stale = 0usize;
        for epoch in 0..self.cfg.epochs {
            let stats = self.run_epoch(ps, opt, n_samples, epoch, loss_fn);
            history.push(stats);
            let score = val_fn(ps);
            if elda_obs::enabled() {
                elda_obs::emit(
                    &elda_obs::TraceEvent::new("val")
                        .with("epoch", epoch)
                        .with("score", score),
                );
            }
            if let Some(monitor) = &self.monitor {
                monitor
                    .lock()
                    .expect("health monitor lock")
                    .observe_val(epoch, score);
            }
            if score > best_score {
                best_score = score;
                best_checkpoint = Some(ps.to_json());
                stale = 0;
            } else {
                stale += 1;
                if let Some(patience) = self.cfg.patience {
                    if stale >= patience {
                        break;
                    }
                }
            }
        }
        if let Some(ckpt) = best_checkpoint {
            ps.load_json(&ckpt).expect("restoring best checkpoint");
        }
        (history, best_score)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Adam;
    use elda_autodiff::Tape;

    /// Builds a linearly separable 2-feature dataset and a logistic
    /// regression loss closure over it.
    fn toy_problem() -> (ParamStore, Vec<Tensor>, Vec<f32>) {
        let mut ps = ParamStore::new();
        ps.register("w", Tensor::zeros(&[2, 1]));
        ps.register("b", Tensor::zeros(&[1]));
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..64 {
            let x0 = (i % 8) as f32 / 4.0 - 1.0;
            let x1 = (i / 8) as f32 / 4.0 - 1.0;
            xs.push(Tensor::from_vec(vec![x0, x1], &[2]));
            ys.push(if x0 + x1 > 0.0 { 1.0 } else { 0.0 });
        }
        (ps, xs, ys)
    }

    fn logistic_loss(
        ps: &ParamStore,
        idx: &[usize],
        xs: &[Tensor],
        ys: &[f32],
    ) -> (f32, HashMap<ParamId, Tensor>) {
        let mut tape = Tape::new();
        let n = idx.len();
        let xb = Tensor::from_vec(
            idx.iter().flat_map(|&i| xs[i].data().to_vec()).collect(),
            &[n, 2],
        );
        let yb = Tensor::from_vec(idx.iter().map(|&i| ys[i]).collect(), &[n, 1]);
        let x = tape.leaf(xb);
        let w = ps.bind(&mut tape, ps.by_name("w").unwrap().id);
        let b = ps.bind(&mut tape, ps.by_name("b").unwrap().id);
        let z = tape.matmul(x, w);
        let z = tape.add(z, b);
        let loss = tape.bce_with_logits(z, &yb);
        let value = tape.value(loss).item();
        (value, tape.backward(loss).into_param_map())
    }

    #[test]
    fn training_reduces_loss() {
        let (mut ps, xs, ys) = toy_problem();
        let trainer = Trainer::new(TrainConfig {
            epochs: 30,
            batch_size: 16,
            ..Default::default()
        });
        let mut opt = Adam::new(0.05);
        let loss_fn = |ps: &ParamStore, idx: &[usize]| logistic_loss(ps, idx, &xs, &ys);
        let first = trainer.run_epoch(&mut ps, &mut opt, xs.len(), 0, &loss_fn);
        let mut last = first.clone();
        for e in 1..30 {
            last = trainer.run_epoch(&mut ps, &mut opt, xs.len(), e, &loss_fn);
        }
        assert!(
            last.mean_loss < 0.5 * first.mean_loss,
            "loss did not drop: {} -> {}",
            first.mean_loss,
            last.mean_loss
        );
    }

    #[test]
    fn epoch_stats_report_wall_time_and_throughput() {
        let (mut ps, xs, ys) = toy_problem();
        let trainer = Trainer::new(TrainConfig {
            epochs: 1,
            batch_size: 16,
            ..Default::default()
        });
        let mut opt = Adam::new(0.05);
        let loss_fn = |ps: &ParamStore, idx: &[usize]| logistic_loss(ps, idx, &xs, &ys);
        let stats = trainer.run_epoch(&mut ps, &mut opt, xs.len(), 0, &loss_fn);
        assert!(
            stats.wall_s >= 0.0 && stats.wall_s.is_finite(),
            "wall_s must be non-negative and finite: {}",
            stats.wall_s
        );
        assert!(
            stats.samples_per_s > 0.0 && stats.samples_per_s.is_finite(),
            "samples_per_s must be positive and finite even when wall time \
             rounds to zero: {}",
            stats.samples_per_s
        );
        // When the epoch took measurable time, throughput and wall time
        // must be mutually consistent; on a zero-duration epoch the
        // throughput saturates instead (covered separately below).
        if stats.wall_s > 0.0 {
            let implied = xs.len() as f32 / stats.wall_s;
            assert!(
                (stats.samples_per_s - implied).abs() <= 1e-3 * implied,
                "samples_per_s {} inconsistent with wall_s {}",
                stats.samples_per_s,
                stats.wall_s
            );
        }
    }

    #[test]
    fn throughput_saturates_on_zero_wall_time() {
        assert_eq!(saturating_throughput(64, 0.0), f32::MAX);
        assert_eq!(
            saturating_throughput(0, 0.0),
            f32::MAX,
            "0/0 must not be NaN"
        );
        assert_eq!(saturating_throughput(10, 2.0), 5.0);
        assert!(saturating_throughput(usize::MAX, f32::MIN_POSITIVE).is_finite());
    }

    // Health scenarios share the process-global autodiff sentinel, so they
    // run inside ONE test fn, serially.
    #[test]
    fn health_monitor_flags_divergence_and_dead_params_but_not_healthy_runs() {
        use crate::optim::Sgd;

        // Healthy: a converging run produces zero incidents.
        let (mut ps, xs, ys) = toy_problem();
        let trainer = Trainer::new(TrainConfig {
            epochs: 5,
            batch_size: 16,
            health: Some(HealthConfig::default()),
            ..Default::default()
        });
        let mut opt = Adam::new(0.05);
        let loss_fn = |ps: &ParamStore, idx: &[usize]| logistic_loss(ps, idx, &xs, &ys);
        for e in 0..5 {
            let stats = trainer.run_epoch(&mut ps, &mut opt, xs.len(), e, &loss_fn);
            assert_eq!(stats.health, Some(HealthStatus::Healthy), "epoch {e}");
        }
        assert!(
            trainer.health_incidents().is_empty(),
            "healthy run flagged: {:?}",
            trainer.health_incidents()
        );
        assert_eq!(trainer.health_overall(), HealthStatus::Healthy);

        // Diverging: an absurd learning rate blows the loss past the
        // ceiling within the first epochs.
        let (mut ps, xs, ys) = toy_problem();
        let trainer = Trainer::new(TrainConfig {
            epochs: 4,
            batch_size: 16,
            health: Some(HealthConfig::default()),
            ..Default::default()
        });
        let mut opt = Sgd::new(1.0e4);
        let loss_fn = |ps: &ParamStore, idx: &[usize]| logistic_loss(ps, idx, &xs, &ys);
        for e in 0..4 {
            trainer.run_epoch(&mut ps, &mut opt, xs.len(), e, &loss_fn);
        }
        let overall = trainer.health_overall();
        assert!(
            matches!(overall, HealthStatus::Diverging | HealthStatus::NonFinite),
            "absurd lr must be flagged, got {overall:?}: {:?}",
            trainer.health_incidents()
        );

        // Dead params: lr = 0 freezes every weight; after `dead_patience`
        // epochs each parameter is reported exactly once.
        let (mut ps, xs, ys) = toy_problem();
        let trainer = Trainer::new(TrainConfig {
            epochs: 4,
            batch_size: 16,
            health: Some(HealthConfig::default()),
            ..Default::default()
        });
        let mut opt = Sgd::new(0.0);
        let loss_fn = |ps: &ParamStore, idx: &[usize]| logistic_loss(ps, idx, &xs, &ys);
        let history: Vec<EpochStats> = (0..4)
            .map(|e| trainer.run_epoch(&mut ps, &mut opt, xs.len(), e, &loss_fn))
            .collect();
        // Incidents attach to the epoch where the streak first crosses
        // `dead_patience` (index 2 with the default of 3); afterwards the
        // dedup keeps later epochs quiet.
        assert_eq!(history[2].health, Some(HealthStatus::DeadParam));
        assert_eq!(history[3].health, Some(HealthStatus::Healthy));
        let incidents = trainer.health_incidents();
        let dead: Vec<_> = incidents
            .iter()
            .filter(|i| i.status == HealthStatus::DeadParam)
            .collect();
        assert_eq!(
            dead.len(),
            2,
            "one incident per frozen param: {incidents:?}"
        );
        // epochs are 0-based; default dead_patience = 3 → first flagged at
        // epoch index 2.
        assert!(dead.iter().all(|i| i.epoch == 2), "{dead:?}");

        elda_autodiff::sentinel::set_enabled(false);
        elda_autodiff::sentinel::clear();
    }

    #[test]
    fn parallel_shards_match_serial_gradients() {
        let (ps, xs, ys) = toy_problem();
        let loss_fn = |ps: &ParamStore, idx: &[usize]| logistic_loss(ps, idx, &xs, &ys);
        let batch: Vec<usize> = (0..32).collect();
        let serial = Trainer::new(TrainConfig {
            threads: 1,
            ..Default::default()
        });
        let parallel = Trainer::new(TrainConfig {
            threads: 4,
            ..Default::default()
        });
        let (l1, g1) = serial.batch_gradients(&ps, &batch, &loss_fn);
        let (l2, g2) = parallel.batch_gradients(&ps, &batch, &loss_fn);
        assert!((l1 - l2).abs() < 1e-6, "{l1} vs {l2}");
        for (id, g) in &g1 {
            elda_tensor::testutil::assert_allclose(g, &g2[id], 1e-4, 1e-6);
        }
    }

    #[test]
    fn fit_restores_best_checkpoint() {
        let (mut ps, xs, ys) = toy_problem();
        let trainer = Trainer::new(TrainConfig {
            epochs: 5,
            batch_size: 16,
            patience: None,
            ..Default::default()
        });
        let mut opt = Adam::new(0.05);
        let loss_fn = |ps: &ParamStore, idx: &[usize]| logistic_loss(ps, idx, &xs, &ys);
        // Adversarial validation score: epoch 2 is "best", later ones worse.
        let mut calls = 0;
        let mut snapshots: Vec<String> = Vec::new();
        let (history, best) = trainer.fit(&mut ps, &mut opt, xs.len(), &loss_fn, &mut |ps| {
            snapshots.push(ps.to_json());
            calls += 1;
            if calls == 3 {
                10.0
            } else {
                1.0
            }
        });
        assert_eq!(history.len(), 5);
        assert_eq!(best, 10.0);
        // The store must equal the epoch-3 (index 2) snapshot.
        assert_eq!(ps.to_json(), snapshots[2]);
    }

    #[test]
    fn early_stopping_respects_patience() {
        let (mut ps, xs, ys) = toy_problem();
        let trainer = Trainer::new(TrainConfig {
            epochs: 50,
            batch_size: 16,
            patience: Some(2),
            ..Default::default()
        });
        let mut opt = Adam::new(0.01);
        let loss_fn = |ps: &ParamStore, idx: &[usize]| logistic_loss(ps, idx, &xs, &ys);
        // Validation never improves after the first epoch.
        let mut first = true;
        let (history, _) = trainer.fit(&mut ps, &mut opt, xs.len(), &loss_fn, &mut |_| {
            if first {
                first = false;
                1.0
            } else {
                0.0
            }
        });
        assert_eq!(history.len(), 3, "1 best epoch + 2 stale epochs");
    }
}
