//! Cross-crate integration: synthetic cohort → pipeline → ELDA training →
//! metrics → interpretation, exercising the full stack the way the
//! experiment binaries do.

use elda_bench::{prepare, Scale};
use elda_core::framework::{train_sequence_model, FitConfig};
use elda_core::interpret::interpret_sample;
use elda_core::{EldaConfig, EldaNet, EldaVariant, PlanCache};
use elda_emr::{CohortPreset, Task};
use elda_nn::ParamStore;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_scale() -> Scale {
    Scale {
        n_patients: 120,
        t_len: 8,
        epochs: 2,
        seeds: 1,
        batch_size: 32,
    }
}

fn tiny_elda(t_len: usize, seed: u64) -> (ParamStore, EldaNet) {
    let mut ps = ParamStore::new();
    let mut cfg = EldaConfig::variant(EldaVariant::Full, t_len);
    cfg.embed_dim = 4;
    cfg.gru_hidden = 8;
    cfg.compression = 2;
    let net = EldaNet::new(&mut ps, cfg, &mut StdRng::seed_from_u64(seed));
    (ps, net)
}

#[test]
fn full_stack_trains_and_reports_metrics() {
    let scale = small_scale();
    let prep = prepare(CohortPreset::PhysioNet2012, &scale, 1);
    let (mut ps, net) = tiny_elda(scale.t_len, 2);
    let fit = FitConfig {
        epochs: 2,
        batch_size: 32,
        patience: None,
        threads: 1,
        ..Default::default()
    };
    let result = train_sequence_model(
        &net,
        &mut ps,
        &prep.samples,
        &prep.split,
        scale.t_len,
        Task::Mortality,
        &fit,
    );
    assert_eq!(result.name, "ELDA-Net");
    assert!(result.test.bce.is_finite() && result.test.bce > 0.0);
    assert!(result.epochs_run == 2);
    assert!(result.train_s_per_batch > 0.0);
    assert!(result.predict_ms_per_sample > 0.0);
    assert!(result.num_params > 0);
}

#[test]
fn both_tasks_flow_through_the_same_prepared_data() {
    let scale = small_scale();
    let prep = prepare(CohortPreset::MimicIii, &scale, 3);
    for task in [Task::Mortality, Task::LosGt7] {
        let (mut ps, net) = tiny_elda(scale.t_len, 4);
        let fit = FitConfig {
            epochs: 1,
            batch_size: 32,
            patience: None,
            threads: 1,
            ..Default::default()
        };
        let result = train_sequence_model(
            &net,
            &mut ps,
            &prep.samples,
            &prep.split,
            scale.t_len,
            task,
            &fit,
        );
        assert!(result.test.bce.is_finite(), "{:?}", task);
    }
}

#[test]
fn trained_model_yields_interpretable_attention() {
    let scale = small_scale();
    let prep = prepare(CohortPreset::PhysioNet2012, &scale, 5);
    let (mut ps, net) = tiny_elda(scale.t_len, 6);
    let fit = FitConfig {
        epochs: 1,
        batch_size: 32,
        patience: None,
        threads: 1,
        ..Default::default()
    };
    train_sequence_model(
        &net,
        &mut ps,
        &prep.samples,
        &prep.split,
        scale.t_len,
        Task::Mortality,
        &fit,
    );
    let interp = interpret_sample(
        &net,
        &ps,
        &prep.samples[0],
        Task::Mortality,
        &PlanCache::new(),
    );
    // attention structure invariants
    assert_eq!(interp.feature_attention.len(), scale.t_len);
    for att in &interp.feature_attention {
        for i in 0..37 {
            assert_eq!(att.at(&[i, i]), 0.0, "diagonal must stay excluded");
            let row: f32 = (0..37).map(|j| att.at(&[i, j])).sum();
            assert!((row - 1.0).abs() < 1e-4, "row {i} sums to {row}");
        }
    }
    let beta_sum: f32 = interp.time_attention.iter().sum();
    assert!((beta_sum - 1.0).abs() < 1e-4);
    assert!((0.0..=1.0).contains(&interp.risk));
}

#[test]
fn prediction_batching_is_transparent() {
    // predict_probs must give identical results regardless of batch size.
    use elda_core::framework::predict_probs;
    let scale = small_scale();
    let prep = prepare(CohortPreset::PhysioNet2012, &scale, 7);
    let (ps, net) = tiny_elda(scale.t_len, 8);
    let idx: Vec<usize> = (0..20).collect();
    let a = predict_probs(
        &net,
        &ps,
        &prep.samples,
        &idx,
        scale.t_len,
        Task::Mortality,
        3,
    );
    let b = predict_probs(
        &net,
        &ps,
        &prep.samples,
        &idx,
        scale.t_len,
        Task::Mortality,
        20,
    );
    for (x, y) in a.iter().zip(&b) {
        assert!((x - y).abs() < 1e-5, "{x} vs {y}");
    }
}
