//! Fault-tolerance drills over the full framework stack: a training run
//! killed mid-epoch resumes from its durable checkpoints to exactly the
//! state an uninterrupted run reaches, corrupt checkpoint files are skipped
//! with a warning, and NaN-gradient faults trigger rollback + learning-rate
//! backoff instead of shipping non-finite weights.
//!
//! Everything lives in one test fn: the fault plan is process-global, so
//! scenarios must not interleave.

use elda_core::framework::{CheckpointOptions, FitConfig};
use elda_core::{Elda, EldaConfig, EldaVariant};
use elda_emr::{Cohort, CohortConfig, Task};
use elda_nn::{faults, FaultPlan, RecoveryPolicy};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

fn tiny_cfg(t_len: usize) -> EldaConfig {
    let mut cfg = EldaConfig::variant(EldaVariant::Full, t_len);
    cfg.embed_dim = 4;
    cfg.gru_hidden = 6;
    cfg.compression = 2;
    cfg
}

fn fit_cfg(epochs: usize) -> FitConfig {
    FitConfig {
        epochs,
        batch_size: 16,
        threads: 1,
        patience: None,
        seed: 0,
        ..Default::default()
    }
}

fn fresh(cohort_t_len: usize) -> Elda {
    Elda::with_config(tiny_cfg(cohort_t_len), Task::Mortality, 7)
}

#[test]
fn kill_at_epoch_k_resume_and_auto_recovery_drill() {
    let tmp: PathBuf = std::env::temp_dir().join(format!("elda-ft-{}", std::process::id()));
    let ckpts = tmp.join("ckpts");
    let _ = std::fs::remove_dir_all(&tmp);

    let mut cc = CohortConfig::small(40, 13);
    cc.t_len = 6;
    let cohort = Cohort::generate(cc);

    // --- Uninterrupted reference: 5 epochs, no faults. --------------------
    let mut reference = fresh(6);
    let ref_report = reference.fit(&cohort, &fit_cfg(5));
    let probe = &cohort.patients[2];
    let ref_risk = reference.predict_proba(probe);

    // --- Kill at epoch 2: an injected mid-epoch panic takes the run down
    // after one optimizer step of epoch 2; checkpoints for epochs 0 and 1
    // are already durable on disk. ----------------------------------------
    faults::install(FaultPlan::parse("panic@2").unwrap());
    let crashed = catch_unwind(AssertUnwindSafe(|| {
        let mut elda = fresh(6);
        let mut cfg = fit_cfg(5);
        cfg.checkpoint = Some(CheckpointOptions::new(&ckpts));
        elda.fit(&cohort, &cfg);
    }));
    assert!(crashed.is_err(), "injected panic did not fire");
    faults::clear();
    assert!(
        ckpts.join("ckpt-00001.json").exists(),
        "no durable checkpoint survived the crash"
    );

    // --- Resume: a brand-new instance (fresh weights, fresh optimizer, as
    // after a process restart) must land bit-for-bit on the reference. ----
    let mut resumed = fresh(6);
    let mut cfg = fit_cfg(5);
    cfg.checkpoint = Some(CheckpointOptions {
        resume: true,
        ..CheckpointOptions::new(&ckpts)
    });
    let report = resumed.fit(&cohort, &cfg);
    assert_eq!(report.epochs_run, 3, "resume should run epochs 2..5 only");
    assert_eq!(report.val_auc_pr, ref_report.val_auc_pr);
    assert_eq!(
        resumed.params().to_json(),
        reference.params().to_json(),
        "killed-and-resumed weights diverged from the uninterrupted run"
    );
    assert_eq!(resumed.predict_proba(probe), ref_risk);
    assert!(
        (report.test.bce - ref_report.test.bce).abs() == 0.0,
        "final test loss differs: {} vs {}",
        report.test.bce,
        ref_report.test.bce
    );

    // --- Corrupt checkpoints are skipped, not trusted: truncate the newest
    // file; resume falls back to the previous epoch, replays it, and still
    // reaches the identical final state. ----------------------------------
    let newest = ckpts.join("ckpt-00004.json");
    let text = std::fs::read_to_string(&newest).unwrap();
    std::fs::write(&newest, &text[..text.len() / 2]).unwrap();
    let mut resumed2 = fresh(6);
    let mut cfg = fit_cfg(5);
    cfg.checkpoint = Some(CheckpointOptions {
        resume: true,
        ..CheckpointOptions::new(&ckpts)
    });
    let report2 = resumed2.fit(&cohort, &cfg);
    assert_eq!(
        report2.epochs_run, 1,
        "should fall back to the epoch-3 checkpoint and replay epoch 4"
    );
    assert_eq!(
        resumed2.params().to_json(),
        reference.params().to_json(),
        "resume after checkpoint corruption diverged"
    );

    // --- NaN gradients auto-recover: rollback + halved lr, finite model. --
    faults::install(FaultPlan::parse("nan_grad@1").unwrap());
    let mut recovered = fresh(6);
    let mut cfg = fit_cfg(3);
    cfg.recovery = Some(RecoveryPolicy::default());
    let report = recovered.fit(&cohort, &cfg);
    faults::clear();
    elda_autodiff::sentinel::set_enabled(false);
    elda_autodiff::sentinel::clear();

    assert_eq!(report.recoveries.len(), 1, "{:?}", report.recoveries);
    let r = &report.recoveries[0];
    assert_eq!(r.epoch, 1);
    assert_eq!(r.rollback_to, Some(0));
    assert_eq!(r.new_lr, r.old_lr * 0.5);
    assert_eq!(report.epochs_run, 3, "condemned attempt must be retried");
    let risk = recovered.predict_proba(probe);
    assert!(risk.is_finite(), "recovered model predicts non-finite risk");
    assert!(
        recovered
            .params()
            .iter()
            .all(|p| p.value.data().iter().all(|x| x.is_finite())),
        "non-finite weights survived auto-recovery"
    );

    let _ = std::fs::remove_dir_all(&tmp);
}
