//! Determinism guarantees: every stage of the stack — cohort generation,
//! preprocessing, initialization, training, prediction — is a pure
//! function of its seeds.

use elda_bench::{prepare, Scale};
use elda_core::framework::{predict_probs, train_sequence_model, FitConfig};
use elda_core::{EldaConfig, EldaNet, EldaVariant};
use elda_emr::{CohortPreset, Task};
use elda_nn::ParamStore;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn scale() -> Scale {
    Scale {
        n_patients: 80,
        t_len: 6,
        epochs: 2,
        seeds: 1,
        batch_size: 16,
    }
}

fn train_and_predict(seed: u64, threads: usize) -> (String, Vec<f32>) {
    let s = scale();
    let prep = prepare(CohortPreset::PhysioNet2012, &s, seed);
    let mut ps = ParamStore::new();
    let mut cfg = EldaConfig::variant(EldaVariant::Full, s.t_len);
    cfg.embed_dim = 4;
    cfg.gru_hidden = 6;
    cfg.compression = 2;
    let net = EldaNet::new(&mut ps, cfg, &mut StdRng::seed_from_u64(seed));
    let fit = FitConfig {
        epochs: 2,
        batch_size: 16,
        patience: None,
        threads,
        seed,
        ..Default::default()
    };
    train_sequence_model(
        &net,
        &mut ps,
        &prep.samples,
        &prep.split,
        s.t_len,
        Task::Mortality,
        &fit,
    );
    let probs = predict_probs(
        &net,
        &ps,
        &prep.samples,
        &prep.split.test,
        s.t_len,
        Task::Mortality,
        16,
    );
    (ps.to_json(), probs)
}

#[test]
fn same_seed_same_model_same_predictions() {
    let (params_a, probs_a) = train_and_predict(7, 1);
    let (params_b, probs_b) = train_and_predict(7, 1);
    assert_eq!(
        params_a, params_b,
        "trained parameters must be bit-identical"
    );
    assert_eq!(probs_a, probs_b);
}

#[test]
fn different_seed_different_model() {
    let (_, probs_a) = train_and_predict(7, 1);
    let (_, probs_b) = train_and_predict(8, 1);
    assert_ne!(probs_a, probs_b);
}

#[test]
fn prepared_data_is_deterministic() {
    let s = scale();
    let a = prepare(CohortPreset::MimicIii, &s, 3);
    let b = prepare(CohortPreset::MimicIii, &s, 3);
    assert_eq!(a.split.train, b.split.train);
    assert_eq!(a.samples[5].x, b.samples[5].x);
    assert_eq!(a.samples[5].mask, b.samples[5].mask);
    assert_eq!(a.pipeline.means(), b.pipeline.means());
}

#[test]
fn checkpoint_restores_exact_predictions() {
    let s = scale();
    let prep = prepare(CohortPreset::PhysioNet2012, &s, 31);
    let mut ps = ParamStore::new();
    let mut cfg = EldaConfig::variant(EldaVariant::Full, s.t_len);
    cfg.embed_dim = 4;
    cfg.gru_hidden = 6;
    cfg.compression = 2;
    let net = EldaNet::new(&mut ps, cfg.clone(), &mut StdRng::seed_from_u64(31));
    let fit = FitConfig {
        epochs: 1,
        batch_size: 16,
        patience: None,
        threads: 1,
        ..Default::default()
    };
    train_sequence_model(
        &net,
        &mut ps,
        &prep.samples,
        &prep.split,
        s.t_len,
        Task::Mortality,
        &fit,
    );
    let ckpt = ps.to_json();
    let before = predict_probs(
        &net,
        &ps,
        &prep.samples,
        &prep.split.test,
        s.t_len,
        Task::Mortality,
        16,
    );

    // fresh instance, same architecture, restored weights
    let mut ps2 = ParamStore::new();
    let net2 = EldaNet::new(&mut ps2, cfg, &mut StdRng::seed_from_u64(999));
    ps2.load_json(&ckpt).expect("restore");
    let after = predict_probs(
        &net2,
        &ps2,
        &prep.samples,
        &prep.split.test,
        s.t_len,
        Task::Mortality,
        16,
    );
    assert_eq!(before, after);
}
