//! Determinism guarantees: every stage of the stack — cohort generation,
//! preprocessing, initialization, training, prediction — is a pure
//! function of its seeds.

use elda_bench::{prepare, Scale};
use elda_core::framework::{predict_probs, train_sequence_model, FitConfig};
use elda_core::{EldaConfig, EldaNet, EldaVariant};
use elda_emr::{CohortPreset, Task};
use elda_nn::ParamStore;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn scale() -> Scale {
    Scale {
        n_patients: 80,
        t_len: 6,
        epochs: 2,
        seeds: 1,
        batch_size: 16,
    }
}

fn train_and_predict(seed: u64, threads: usize) -> (String, Vec<f32>) {
    let s = scale();
    let prep = prepare(CohortPreset::PhysioNet2012, &s, seed);
    let mut ps = ParamStore::new();
    let mut cfg = EldaConfig::variant(EldaVariant::Full, s.t_len);
    cfg.embed_dim = 4;
    cfg.gru_hidden = 6;
    cfg.compression = 2;
    let net = EldaNet::new(&mut ps, cfg, &mut StdRng::seed_from_u64(seed));
    let fit = FitConfig {
        epochs: 2,
        batch_size: 16,
        patience: None,
        threads,
        seed,
        ..Default::default()
    };
    train_sequence_model(
        &net,
        &mut ps,
        &prep.samples,
        &prep.split,
        s.t_len,
        Task::Mortality,
        &fit,
    );
    let probs = predict_probs(
        &net,
        &ps,
        &prep.samples,
        &prep.split.test,
        s.t_len,
        Task::Mortality,
        16,
    );
    (ps.to_json(), probs)
}

#[test]
fn same_seed_same_model_same_predictions() {
    let (params_a, probs_a) = train_and_predict(7, 1);
    let (params_b, probs_b) = train_and_predict(7, 1);
    assert_eq!(
        params_a, params_b,
        "trained parameters must be bit-identical"
    );
    assert_eq!(probs_a, probs_b);
}

/// The determinism contract of the parallel stack: thread count bounds
/// concurrency but never changes shard structure or kernel dispatch, so a
/// full train-then-predict run is *bit-identical* at `--threads 1`,
/// `--threads 4`, and `--threads 0` (auto-detect).
#[test]
fn thread_count_never_changes_results() {
    let s = Scale {
        // batch_size 32 -> two GRAD_SHARD-sample shards per batch, so the
        // shard-parallel combine path is genuinely exercised.
        batch_size: 32,
        ..scale()
    };
    let run = |threads: usize| {
        let prep = prepare(CohortPreset::PhysioNet2012, &s, 11);
        let mut ps = ParamStore::new();
        let mut cfg = EldaConfig::variant(EldaVariant::Full, s.t_len);
        cfg.embed_dim = 4;
        cfg.gru_hidden = 6;
        cfg.compression = 2;
        let net = EldaNet::new(&mut ps, cfg, &mut StdRng::seed_from_u64(11));
        let fit = FitConfig {
            epochs: 2,
            batch_size: s.batch_size,
            patience: None,
            threads,
            seed: 11,
            ..Default::default()
        };
        let result = train_sequence_model(
            &net,
            &mut ps,
            &prep.samples,
            &prep.split,
            s.t_len,
            Task::Mortality,
            &fit,
        );
        let probs = predict_probs(
            &net,
            &ps,
            &prep.samples,
            &prep.split.test,
            s.t_len,
            Task::Mortality,
            16,
        );
        (ps.to_json(), probs, result.val_auc_pr, result.test.auc_pr)
    };
    let (params_1, probs_1, val_1, test_1) = run(1);
    for threads in [4usize, 0] {
        let (params_n, probs_n, val_n, test_n) = run(threads);
        assert_eq!(
            params_1, params_n,
            "final parameters differ at threads={threads}"
        );
        assert_eq!(probs_1, probs_n, "predictions differ at threads={threads}");
        assert_eq!(
            val_1.to_bits(),
            val_n.to_bits(),
            "validation metric differs at threads={threads}"
        );
        assert_eq!(
            test_1.to_bits(),
            test_n.to_bits(),
            "test metric differs at threads={threads}"
        );
    }
}

#[test]
fn different_seed_different_model() {
    let (_, probs_a) = train_and_predict(7, 1);
    let (_, probs_b) = train_and_predict(8, 1);
    assert_ne!(probs_a, probs_b);
}

#[test]
fn prepared_data_is_deterministic() {
    let s = scale();
    let a = prepare(CohortPreset::MimicIii, &s, 3);
    let b = prepare(CohortPreset::MimicIii, &s, 3);
    assert_eq!(a.split.train, b.split.train);
    assert_eq!(a.samples[5].x, b.samples[5].x);
    assert_eq!(a.samples[5].mask, b.samples[5].mask);
    assert_eq!(a.pipeline.means(), b.pipeline.means());
}

#[test]
fn checkpoint_restores_exact_predictions() {
    let s = scale();
    let prep = prepare(CohortPreset::PhysioNet2012, &s, 31);
    let mut ps = ParamStore::new();
    let mut cfg = EldaConfig::variant(EldaVariant::Full, s.t_len);
    cfg.embed_dim = 4;
    cfg.gru_hidden = 6;
    cfg.compression = 2;
    let net = EldaNet::new(&mut ps, cfg.clone(), &mut StdRng::seed_from_u64(31));
    let fit = FitConfig {
        epochs: 1,
        batch_size: 16,
        patience: None,
        threads: 1,
        ..Default::default()
    };
    train_sequence_model(
        &net,
        &mut ps,
        &prep.samples,
        &prep.split,
        s.t_len,
        Task::Mortality,
        &fit,
    );
    let ckpt = ps.to_json();
    let before = predict_probs(
        &net,
        &ps,
        &prep.samples,
        &prep.split.test,
        s.t_len,
        Task::Mortality,
        16,
    );

    // fresh instance, same architecture, restored weights
    let mut ps2 = ParamStore::new();
    let net2 = EldaNet::new(&mut ps2, cfg, &mut StdRng::seed_from_u64(999));
    ps2.load_json(&ckpt).expect("restore");
    let after = predict_probs(
        &net2,
        &ps2,
        &prep.samples,
        &prep.split.test,
        s.t_len,
        Task::Mortality,
        16,
    );
    assert_eq!(before, after);
}
