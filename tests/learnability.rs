//! Learnability and leakage checks: the planted signals in the synthetic
//! cohorts are learnable by the models that should learn them, and nothing
//! is learnable once the labels are shuffled (no leakage through the
//! pipeline).

use elda_bench::{prepare, Scale};
use elda_core::framework::{labels_of, predict_probs, train_sequence_model, FitConfig};
use elda_core::{EldaConfig, EldaNet, EldaVariant};
use elda_emr::{CohortPreset, Task};
use elda_metrics::auc_roc;
use elda_nn::ParamStore;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn scale() -> Scale {
    // enough signal + epochs to clearly beat chance, small enough for CI
    Scale {
        n_patients: 500,
        t_len: 12,
        epochs: 6,
        seeds: 1,
        batch_size: 32,
    }
}

fn fit() -> FitConfig {
    FitConfig {
        epochs: 6,
        batch_size: 32,
        patience: None,
        threads: 1,
        ..Default::default()
    }
}

#[test]
fn elda_beats_chance_on_mortality() {
    let s = scale();
    let prep = prepare(CohortPreset::PhysioNet2012, &s, 41);
    let mut ps = ParamStore::new();
    let mut cfg = EldaConfig::variant(EldaVariant::Full, s.t_len);
    cfg.embed_dim = 6;
    cfg.gru_hidden = 12;
    cfg.compression = 2;
    let net = EldaNet::new(&mut ps, cfg, &mut StdRng::seed_from_u64(42));
    train_sequence_model(
        &net,
        &mut ps,
        &prep.samples,
        &prep.split,
        s.t_len,
        Task::Mortality,
        &fit(),
    );
    // Evaluate on the val+test union to tame small-fold variance.
    let mut eval_idx = prep.split.val.clone();
    eval_idx.extend(&prep.split.test);
    let probs = predict_probs(
        &net,
        &ps,
        &prep.samples,
        &eval_idx,
        s.t_len,
        Task::Mortality,
        32,
    );
    let y = labels_of(&prep.samples, &eval_idx, Task::Mortality);
    let auc = auc_roc(&probs, &y);
    assert!(
        auc > 0.62,
        "ELDA should clearly beat chance; AUC-ROC = {auc}"
    );
}

#[test]
fn gru_learns_the_los_task() {
    use elda_baselines::{build_baseline, BaselineKind};
    let s = scale();
    let prep = prepare(CohortPreset::MimicIii, &s, 43);
    let (model, mut ps) = build_baseline(BaselineKind::Gru, 37, 44);
    let result = train_sequence_model(
        model.as_ref(),
        &mut ps,
        &prep.samples,
        &prep.split,
        s.t_len,
        Task::LosGt7,
        &fit(),
    );
    assert!(
        result.test.auc_roc > 0.6,
        "GRU should learn LOS>7; AUC-ROC = {}",
        result.test.auc_roc
    );
}

#[test]
fn shuffled_labels_destroy_performance() {
    let s = scale();
    let mut prep = prepare(CohortPreset::PhysioNet2012, &s, 45);
    // Shuffle the mortality labels across all samples (train included).
    let mut labels: Vec<f32> = prep.samples.iter().map(|smp| smp.y_mortality).collect();
    labels.shuffle(&mut StdRng::seed_from_u64(46));
    for (smp, y) in prep.samples.iter_mut().zip(labels) {
        smp.y_mortality = y;
    }
    let mut ps = ParamStore::new();
    let mut cfg = EldaConfig::variant(EldaVariant::Full, s.t_len);
    cfg.embed_dim = 6;
    cfg.gru_hidden = 12;
    cfg.compression = 2;
    let net = EldaNet::new(&mut ps, cfg, &mut StdRng::seed_from_u64(47));
    train_sequence_model(
        &net,
        &mut ps,
        &prep.samples,
        &prep.split,
        s.t_len,
        Task::Mortality,
        &fit(),
    );
    let probs = predict_probs(
        &net,
        &ps,
        &prep.samples,
        &prep.split.test,
        s.t_len,
        Task::Mortality,
        32,
    );
    let y = labels_of(&prep.samples, &prep.split.test, Task::Mortality);
    if y.contains(&1.0) && y.contains(&0.0) {
        let auc = auc_roc(&probs, &y);
        assert!(
            (0.3..0.7).contains(&auc),
            "shuffled labels must not be learnable; AUC-ROC = {auc}"
        );
    }
}

#[test]
fn severity_signal_reaches_the_features() {
    // Patients the generator marked as dying must, on average, score higher
    // under a trained model — i.e. the label is reachable from the inputs.
    let s = scale();
    let prep = prepare(CohortPreset::PhysioNet2012, &s, 49);
    let mut ps = ParamStore::new();
    let mut cfg = EldaConfig::variant(EldaVariant::TimeOnly, s.t_len);
    cfg.gru_hidden = 12;
    let net = EldaNet::new(&mut ps, cfg, &mut StdRng::seed_from_u64(50));
    train_sequence_model(
        &net,
        &mut ps,
        &prep.samples,
        &prep.split,
        s.t_len,
        Task::Mortality,
        &fit(),
    );
    let probs = predict_probs(
        &net,
        &ps,
        &prep.samples,
        &prep.split.test,
        s.t_len,
        Task::Mortality,
        32,
    );
    let y = labels_of(&prep.samples, &prep.split.test, Task::Mortality);
    let pos: Vec<f32> = probs
        .iter()
        .zip(&y)
        .filter(|(_, &l)| l == 1.0)
        .map(|(&p, _)| p)
        .collect();
    let neg: Vec<f32> = probs
        .iter()
        .zip(&y)
        .filter(|(_, &l)| l == 0.0)
        .map(|(&p, _)| p)
        .collect();
    if !pos.is_empty() && !neg.is_empty() {
        let mp = pos.iter().sum::<f32>() / pos.len() as f32;
        let mn = neg.iter().sum::<f32>() / neg.len() as f32;
        assert!(mp > mn, "positives should score higher: {mp} vs {mn}");
    }
}
