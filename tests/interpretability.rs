//! End-to-end interpretability: the attention ELDA reports must track the
//! structure the generator planted — the paper's Figures 8–10 claims in
//! test form (at reduced scale).

use elda_bench::{prepare, Scale};
use elda_core::framework::{train_sequence_model, FitConfig};
use elda_core::interpret::interpret_sample;
use elda_core::{EldaConfig, EldaNet, EldaVariant, PlanCache};
use elda_emr::presets::{patient_a, with_feature_overridden};
use elda_emr::{essential_features, feature_by_name, CohortPreset, Task};
use elda_nn::ParamStore;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn trained_full_elda(scale: &Scale, seed: u64) -> (ParamStore, EldaNet, elda_bench::Prepared) {
    let prep = prepare(CohortPreset::PhysioNet2012, scale, seed);
    let mut ps = ParamStore::new();
    let mut cfg = EldaConfig::variant(EldaVariant::Full, scale.t_len);
    cfg.embed_dim = 8;
    cfg.gru_hidden = 12;
    cfg.compression = 2;
    let net = EldaNet::new(&mut ps, cfg, &mut StdRng::seed_from_u64(seed + 1));
    let fit = FitConfig {
        epochs: 3,
        batch_size: 32,
        patience: None,
        threads: 1,
        ..Default::default()
    };
    train_sequence_model(
        &net,
        &mut ps,
        &prep.samples,
        &prep.split,
        scale.t_len,
        Task::Mortality,
        &fit,
    );
    (ps, net, prep)
}

#[test]
fn feature_attention_is_state_dependent_over_the_stay() {
    // Figure 10's mechanism-level claim: the attention Glucose pays its
    // partners *changes with the patient's state* — the row at the acute
    // peak differs measurably from the row at admission, because the
    // interaction logits are computed from the value-dependent embeddings.
    // (Which partners win after training is generator-dependent: our
    // archetype effects are rank-one, so training flattens the ordering —
    // see EXPERIMENTS.md. The trained-model claim that survives is the
    // Lactate controlled experiment below.)
    let scale = Scale {
        n_patients: 60,
        t_len: 48,
        epochs: 3,
        seeds: 1,
        batch_size: 32,
    };
    let prep = prepare(CohortPreset::PhysioNet2012, &scale, 101);
    let mut ps = ParamStore::new();
    let cfg = EldaConfig::variant(EldaVariant::Full, scale.t_len);
    let net = EldaNet::new(&mut ps, cfg, &mut StdRng::seed_from_u64(9));
    let patient = patient_a(4242);
    let sample = prep.pipeline.process(&patient);
    let interp = interpret_sample(&net, &ps, &sample, Task::Mortality, &PlanCache::new());

    let glu = feature_by_name("Glucose").unwrap();
    let admission = interp.feature_row_percent(2, glu).expect("hour in window");
    let acute = interp.feature_row_percent(22, glu).expect("hour in window");
    let l1: f32 = admission
        .iter()
        .zip(&acute)
        .map(|(a, b)| (a - b).abs())
        .sum();
    assert!(
        l1 > 0.5,
        "Glucose's attention row should shift between admission and the acute peak; L1 = {l1:.3} (percent points)"
    );
    // and every row stays a valid distribution at both hours
    for row in [&admission, &acute] {
        let total: f32 = row.iter().sum();
        assert!((total - 100.0).abs() < 0.1);
    }
}

#[test]
fn normalizing_lactate_reduces_its_received_attention() {
    // Figure 9(b)'s controlled experiment as an assertion.
    let scale = Scale {
        n_patients: 300,
        t_len: 48,
        epochs: 3,
        seeds: 1,
        batch_size: 32,
    };
    let (ps, net, prep) = trained_full_elda(&scale, 103);
    let patient = patient_a(4242);
    let lac = feature_by_name("Lactate").unwrap();
    let modified = with_feature_overridden(&patient, lac, prep.pipeline.means()[lac]);

    let cache = PlanCache::new();
    let received = |p: &elda_emr::Patient| -> f32 {
        let sample = prep.pipeline.process(p);
        let interp = interpret_sample(&net, &ps, &sample, Task::Mortality, &cache);
        let mut total = 0.0;
        let mut n = 0;
        for hour in 16..28 {
            for &i in essential_features().iter().filter(|&&i| i != lac) {
                total += interp.feature_row_percent(hour, i).expect("hour in window")[lac];
                n += 1;
            }
        }
        total / n as f32
    };
    let before = received(&patient);
    let after = received(&modified);
    assert!(
        after < before,
        "normalizing Lactate must reduce the attention it receives: {before:.2}% -> {after:.2}%"
    );
}

#[test]
fn time_attention_skews_toward_late_hours() {
    // Figure 8's core shape: mass on the last quarter exceeds the uniform share.
    let scale = Scale {
        n_patients: 300,
        t_len: 24,
        epochs: 3,
        seeds: 1,
        batch_size: 32,
    };
    let (ps, net, prep) = trained_full_elda(&scale, 107);
    let cache = PlanCache::new();
    let mut late_masses = Vec::new();
    for &i in prep.split.test.iter().take(20) {
        let interp = interpret_sample(&net, &ps, &prep.samples[i], Task::Mortality, &cache);
        let t1 = interp.time_attention.len();
        let late: f32 = interp.time_attention[t1 - t1 / 4..].iter().sum();
        late_masses.push(late);
    }
    let mean_late = late_masses.iter().sum::<f32>() / late_masses.len() as f32;
    // 23 earlier hours; the "last quarter" window is 5 hours → uniform 5/23
    let uniform_share = 5.0f32 / 23.0;
    assert!(
        mean_late > uniform_share,
        "late-quarter attention {mean_late:.3} should exceed the uniform share {uniform_share:.3}"
    );
}
