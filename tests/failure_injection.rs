//! Failure-injection tests: malformed checkpoints, corrupted artifacts,
//! degenerate data, and shape-contract violations must fail loudly and
//! precisely — never silently corrupt a model.

use elda_core::framework::FitConfig;
use elda_core::{Elda, EldaConfig, EldaVariant};
use elda_emr::io::{parse_outcomes, parse_record};
use elda_emr::{Batch, Cohort, CohortConfig, Pipeline, Task};
use elda_nn::ParamStore;
use elda_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny_cfg(t_len: usize) -> EldaConfig {
    let mut cfg = EldaConfig::variant(EldaVariant::Full, t_len);
    cfg.embed_dim = 4;
    cfg.gru_hidden = 6;
    cfg.compression = 2;
    cfg
}

fn trained_elda() -> (Cohort, Elda) {
    let mut cc = CohortConfig::small(40, 51);
    cc.t_len = 6;
    let cohort = Cohort::generate(cc);
    let mut elda = Elda::with_config(tiny_cfg(6), Task::Mortality, 1);
    elda.fit(
        &cohort,
        &FitConfig {
            epochs: 1,
            batch_size: 16,
            patience: None,
            threads: 1,
            ..Default::default()
        },
    );
    (cohort, elda)
}

// ---------------------------------------------------------------------
// Checkpoint / artifact corruption
// ---------------------------------------------------------------------

#[test]
fn truncated_checkpoint_is_rejected_and_store_unchanged() {
    let (cohort, mut elda) = trained_elda();
    let before = elda.predict_proba(&cohort.patients[0]);
    let ckpt = elda.checkpoint();
    let truncated = &ckpt[..ckpt.len() / 2];
    assert!(elda.restore(truncated).is_err());
    // failed restore must not have partially written anything
    assert_eq!(elda.predict_proba(&cohort.patients[0]), before);
}

#[test]
fn checkpoint_with_flipped_shape_is_rejected_atomically() {
    let (cohort, mut elda) = trained_elda();
    let before = elda.predict_proba(&cohort.patients[0]);
    // mangle the first parameter's leading shape extent
    let mut doc: serde_json::Value = serde_json::from_str(&elda.checkpoint()).unwrap();
    let shape0 = &mut doc[0]["shape"][0];
    *shape0 = serde_json::json!(shape0.as_u64().unwrap() + 1);
    let ckpt = serde_json::to_string(&doc).unwrap();
    assert!(elda.restore(&ckpt).is_err());
    assert_eq!(elda.predict_proba(&cohort.patients[0]), before);
}

#[test]
fn artifact_with_wrong_format_tag_is_rejected() {
    let (_, elda) = trained_elda();
    let artifact = elda.save().replace("elda/v1", "elda/v999");
    assert!(Elda::load(&artifact).is_err());
}

#[test]
fn cross_architecture_checkpoint_is_rejected() {
    // a TimeOnly checkpoint must not load into a Full model
    let mut ps_small = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(1);
    let _ = elda_core::EldaNet::new(
        &mut ps_small,
        EldaConfig::variant(EldaVariant::TimeOnly, 6),
        &mut rng,
    );
    let foreign = ps_small.to_json();
    let (_, mut elda) = trained_elda();
    assert!(elda.restore(&foreign).is_err());
}

// ---------------------------------------------------------------------
// Malformed external data
// ---------------------------------------------------------------------

#[test]
fn io_errors_carry_file_and_line() {
    let err = parse_record("patient-7", "Time,Parameter,Value\n00:00,HR\n", 4).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("patient-7:2"), "{msg}");

    let err = parse_outcomes("bogus header\n").unwrap_err();
    assert!(err.to_string().contains("RecordID"), "{err}");
}

#[test]
fn empty_record_file_is_a_valid_all_missing_patient() {
    let grid = parse_record("empty", "Time,Parameter,Value\n", 4).unwrap();
    assert!(grid.iter().all(|v| v.is_nan()));
}

// ---------------------------------------------------------------------
// Shape-contract violations panic with precise messages
// ---------------------------------------------------------------------

#[test]
#[should_panic(expected = "t_len mismatch")]
fn wrong_t_len_batch_panics() {
    let mut cc = CohortConfig::small(12, 53);
    cc.t_len = 8;
    let cohort = Cohort::generate(cc);
    let idx: Vec<usize> = (0..12).collect();
    let pipe = Pipeline::fit(&cohort, &idx);
    let samples = pipe.process_all(&cohort);
    let batch = Batch::gather(&samples, &[0], 8, Task::Mortality);
    // model expects 6 steps, batch has 8
    let mut ps = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(2);
    let net = elda_core::EldaNet::new(&mut ps, tiny_cfg(6), &mut rng);
    let mut tape = elda_autodiff::Tape::new();
    use elda_core::SequenceModel;
    net.forward_logits(&ps, &mut tape, &batch);
}

#[test]
#[should_panic(expected = "empty batch")]
fn empty_batch_panics() {
    let mut cc = CohortConfig::small(12, 55);
    cc.t_len = 4;
    let cohort = Cohort::generate(cc);
    let idx: Vec<usize> = (0..12).collect();
    let pipe = Pipeline::fit(&cohort, &idx);
    let samples = pipe.process_all(&cohort);
    Batch::gather(&samples, &[], 4, Task::Mortality);
}

// ---------------------------------------------------------------------
// Degenerate numerical inputs stay finite
// ---------------------------------------------------------------------

#[test]
fn extreme_inputs_do_not_produce_nans() {
    let mut cc = CohortConfig::small(12, 57);
    cc.t_len = 5;
    let cohort = Cohort::generate(cc);
    let idx: Vec<usize> = (0..12).collect();
    let pipe = Pipeline::fit(&cohort, &idx);
    let samples = pipe.process_all(&cohort);
    let mut batch = Batch::gather(&samples, &[0, 1], 5, Task::Mortality);
    // saturate every input at the clip bound
    batch.x = Tensor::full(batch.x.shape(), 3.0);
    let mut ps = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(3);
    let net = elda_core::EldaNet::new(&mut ps, tiny_cfg(5), &mut rng);
    use elda_core::SequenceModel;
    let mut tape = elda_autodiff::Tape::new();
    let logits = net.forward_logits(&ps, &mut tape, &batch);
    assert!(tape.value(logits).all_finite());
    let loss = tape.bce_with_logits(logits, &batch.y);
    let grads = tape.backward(loss);
    assert!(grads.param_sq_norm().is_finite());
}

#[test]
fn all_features_missing_patient_predicts_finite_risk() {
    let (cohort, elda) = trained_elda();
    let mut ghost = cohort.patients[0].clone();
    for v in &mut ghost.values {
        *v = f32::NAN;
    }
    let risk = elda.predict_proba(&ghost);
    assert!(risk.is_finite() && (0.0..=1.0).contains(&risk));
}
