//! Golden tests for the tape-free inference engine: the capture/replay
//! path in `elda_core::infer` must reproduce the retaining-tape forward
//! **bitwise** — same kernels, same shapes, same accumulation order — for
//! ELDA-Net and the baselines, across batch splits (including a partial
//! last chunk), thread counts, and both sides of the never-flag graph
//! branch.

use elda_baselines::gru::GruClassifier;
use elda_baselines::retain::Retain;
use elda_bench::{prepare, Scale};
use elda_core::framework::{predict_probs, predict_probs_tape};
use elda_core::infer::PlanCache;
use elda_core::model::SequenceModel;
use elda_core::{EldaConfig, EldaNet, EldaVariant};
use elda_emr::{CohortPreset, Task, NUM_FEATURES};
use elda_nn::ParamStore;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_scale() -> Scale {
    Scale {
        n_patients: 60,
        t_len: 8,
        epochs: 1,
        seeds: 1,
        batch_size: 16,
    }
}

fn tiny_elda(t_len: usize, seed: u64) -> (ParamStore, EldaNet) {
    let mut ps = ParamStore::new();
    let mut cfg = EldaConfig::variant(EldaVariant::Full, t_len);
    cfg.embed_dim = 4;
    cfg.gru_hidden = 8;
    cfg.compression = 2;
    let net = EldaNet::new(&mut ps, cfg, &mut StdRng::seed_from_u64(seed));
    (ps, net)
}

fn assert_bitwise(a: &[f32], b: &[f32], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: sample {i} diverged: {x} vs {y}"
        );
    }
}

#[test]
fn grad_free_forward_is_bitwise_identical_to_tape_forward() {
    let scale = small_scale();
    let prep = prepare(CohortPreset::PhysioNet2012, &scale, 11);
    let idx: Vec<usize> = (0..20).collect();

    // ELDA-Net plus two architecturally different baselines; a partial
    // last chunk (20 % 7 != 0) and a single full batch both covered.
    let (elda_ps, elda_net) = tiny_elda(scale.t_len, 3);
    let mut gru_ps = ParamStore::new();
    let gru = GruClassifier::new(&mut gru_ps, NUM_FEATURES, 8, &mut StdRng::seed_from_u64(4));
    let mut retain_ps = ParamStore::new();
    let retain = Retain::new(
        &mut retain_ps,
        NUM_FEATURES,
        6,
        &mut StdRng::seed_from_u64(5),
    );
    let models: [(&dyn SequenceModel, &ParamStore); 3] = [
        (&elda_net, &elda_ps),
        (&gru, &gru_ps),
        (&retain, &retain_ps),
    ];

    for (model, ps) in models {
        for batch_size in [7, 20] {
            let tape = predict_probs_tape(
                model,
                ps,
                &prep.samples,
                &idx,
                scale.t_len,
                Task::Mortality,
                batch_size,
            );
            let replay = predict_probs(
                model,
                ps,
                &prep.samples,
                &idx,
                scale.t_len,
                Task::Mortality,
                batch_size,
            );
            let what = format!("{} batch_size={batch_size}", model.name());
            assert_bitwise(&tape, &replay, &what);
        }
    }
}

#[test]
fn replay_is_bitwise_stable_across_calls_and_thread_counts() {
    let scale = small_scale();
    let prep = prepare(CohortPreset::PhysioNet2012, &scale, 12);
    let (ps, net) = tiny_elda(scale.t_len, 6);
    let idx: Vec<usize> = (0..20).collect();

    let cache = PlanCache::new();
    let run = |cache: &PlanCache| {
        elda_core::infer::predict_probs(
            &net,
            &ps,
            &prep.samples,
            &idx,
            scale.t_len,
            Task::Mortality,
            7,
            cache,
        )
    };
    let first = run(&cache); // captures
                             // chunks of 7,7,6 → two distinct batch shapes → two plans
    assert_eq!(cache.len(), 2, "one plan per distinct batch shape");
    let second = run(&cache); // replays
    assert_bitwise(&first, &second, "capture vs replay");
    assert_eq!(cache.len(), 2, "replay must not re-capture");

    let prev = elda_tensor::pool::threads();
    elda_tensor::pool::set_threads(4);
    let wide = run(&cache);
    elda_tensor::pool::set_threads(prev);
    assert_bitwise(&first, &wide, "1 thread vs 4 threads");
}

#[test]
fn never_flag_branch_is_plan_keyed_and_bitwise_identical() {
    let scale = small_scale();
    let prep = prepare(CohortPreset::PhysioNet2012, &scale, 13);
    let (ps, net) = tiny_elda(scale.t_len, 7);

    // Force both sides of the embedding's data-dependent branch: one copy
    // of the cohort with every never flag cleared (fast path), one with a
    // guaranteed never-observed feature (slow path).
    let mut all_observed = prep.samples[..12].to_vec();
    for s in &mut all_observed {
        s.never = vec![0.0; NUM_FEATURES];
    }
    let mut with_missing = prep.samples[..12].to_vec();
    with_missing[0].never[0] = 1.0;

    let idx: Vec<usize> = (0..12).collect();
    let cache = PlanCache::new();
    for (samples, what) in [(&all_observed, "never=0"), (&with_missing, "never!=0")] {
        let tape = predict_probs_tape(&net, &ps, samples, &idx, scale.t_len, Task::Mortality, 12);
        let replay = elda_core::infer::predict_probs(
            &net,
            &ps,
            samples,
            &idx,
            scale.t_len,
            Task::Mortality,
            12,
            &cache,
        );
        assert_bitwise(&tape, &replay, what);
    }
    // Same dims, different graph_key → the cache must hold both plans
    // rather than replaying the wrong op sequence.
    assert_eq!(cache.len(), 2, "both graph keys cached separately");
}
