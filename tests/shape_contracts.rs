//! Shape and contract tests across crates: every model in the repository
//! accepts the pipeline's batches and produces `(B, 1)` logits with finite
//! values and gradients for its live parameters.

use elda_autodiff::Tape;
use elda_baselines::{build_baseline, BaselineKind};
use elda_bench::{prepare, Scale};
use elda_core::{EldaConfig, EldaNet, EldaVariant, SequenceModel};
use elda_emr::{Batch, CohortPreset, Task};
use elda_nn::ParamStore;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn scale() -> Scale {
    Scale {
        n_patients: 60,
        t_len: 6,
        epochs: 1,
        seeds: 1,
        batch_size: 16,
    }
}

#[test]
fn every_model_accepts_pipeline_batches() {
    let s = scale();
    let prep = prepare(CohortPreset::PhysioNet2012, &s, 11);
    let batch = Batch::gather(&prep.samples, &[0, 1, 2, 3, 4], s.t_len, Task::Mortality);

    // 12 baselines
    for kind in BaselineKind::all() {
        let (model, ps) = build_baseline(kind, 37, 5);
        let mut tape = Tape::new();
        let logits = model.forward_logits(&ps, &mut tape, &batch);
        assert_eq!(tape.shape(logits), &[5, 1], "{}", kind.name());
        assert!(tape.value(logits).all_finite(), "{}", kind.name());
    }
    // 6 ELDA variants
    for variant in EldaVariant::all() {
        let mut ps = ParamStore::new();
        let mut cfg = EldaConfig::variant(variant, s.t_len);
        cfg.embed_dim = 4;
        cfg.gru_hidden = 6;
        cfg.compression = 2;
        let net = EldaNet::new(&mut ps, cfg, &mut StdRng::seed_from_u64(5));
        let mut tape = Tape::new();
        let logits = net.forward_logits(&ps, &mut tape, &batch);
        assert_eq!(tape.shape(logits), &[5, 1], "{}", variant.name());
        assert!(tape.value(logits).all_finite(), "{}", variant.name());
    }
}

#[test]
fn losses_backprop_without_nans_for_all_models() {
    let s = scale();
    let prep = prepare(CohortPreset::MimicIii, &s, 13);
    let batch = Batch::gather(&prep.samples, &[0, 1, 2], s.t_len, Task::LosGt7);
    for kind in BaselineKind::all() {
        let (model, ps) = build_baseline(kind, 37, 17);
        let mut tape = Tape::new();
        let logits = model.forward_logits(&ps, &mut tape, &batch);
        let loss = tape.bce_with_logits(logits, &batch.y);
        let grads = tape.backward(loss);
        let norm = grads.param_sq_norm();
        assert!(
            norm.is_finite() && norm > 0.0,
            "{}: grad norm {norm}",
            kind.name()
        );
    }
}

#[test]
fn batch_tensors_have_consistent_shapes() {
    let s = scale();
    let prep = prepare(CohortPreset::PhysioNet2012, &s, 19);
    let batch = Batch::gather(
        &prep.samples,
        &(0..7).collect::<Vec<_>>(),
        s.t_len,
        Task::Mortality,
    );
    assert_eq!(batch.x.shape(), &[7, s.t_len, 37]);
    assert_eq!(batch.mask.shape(), &[7, s.t_len, 37]);
    assert_eq!(batch.delta.shape(), &[7, s.t_len, 37]);
    assert_eq!(batch.never.shape(), &[7, 37]);
    assert_eq!(batch.y.shape(), &[7, 1]);
    // mask implies value within clip bounds; never implies all-unobserved
    for (x, m) in batch.x.data().iter().zip(batch.mask.data()) {
        assert!(m == &0.0 || m == &1.0);
        assert!((-3.0..=3.0).contains(x));
    }
}

#[test]
fn paper_scale_elda_builds_with_48_hours() {
    // The real configuration (37 features, 48 steps) must construct and
    // run one forward on a small batch without blowing memory.
    let s = Scale {
        n_patients: 12,
        t_len: 48,
        epochs: 1,
        seeds: 1,
        batch_size: 4,
    };
    let prep = prepare(CohortPreset::PhysioNet2012, &s, 23);
    let batch = Batch::gather(&prep.samples, &[0, 1], 48, Task::Mortality);
    let mut ps = ParamStore::new();
    let net = EldaNet::new(
        &mut ps,
        EldaConfig::paper_default(),
        &mut StdRng::seed_from_u64(29),
    );
    let mut tape = Tape::new();
    let logits = net.forward_logits(&ps, &mut tape, &batch);
    assert_eq!(tape.shape(logits), &[2, 1]);
    assert!(tape.value(logits).all_finite());
}
