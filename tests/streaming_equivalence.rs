//! Equivalence suite for the streaming inference path: after `k` appends
//! a [`StreamSession`] must return **bitwise** the probability that the
//! batch path (`predict_batch` on a model resized to `W = min(k, t_len)`)
//! assigns to the last `W` raw rows scored as an independent patient —
//! for every prefix length (including one-hour stays and the `> t_len`
//! sliding-window regime), with and without the feature / time modules,
//! under missingness patterns that flip never-observed flags mid-stay,
//! and at any thread-pool width.
//!
//! These tests pin the contract documented in `elda_core::stream`: the
//! streaming engine records its own (shorter) replay plans, so the
//! equality below is a statement about kernel determinism — equal input
//! bits through the same fixed-order reductions — not about sharing the
//! batch op sequence.

use elda_core::{Elda, EldaConfig, EldaVariant, StreamSession};
use elda_emr::io::{patient_from_grid, Outcome};
use elda_emr::{Cohort, CohortConfig, Pipeline, Task, NUM_FEATURES};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use std::sync::Arc;

/// An untrained (random-init) model with a fitted pipeline — equivalence
/// is a property of the forward graph, not of the weights, so skipping
/// `fit` keeps the suite fast without weakening it.
fn tiny_model(variant: EldaVariant, t_len: usize, seed: u64) -> Arc<Elda> {
    let mut cfg = EldaConfig::variant(variant, t_len);
    cfg.embed_dim = 4;
    cfg.gru_hidden = 6;
    cfg.compression = 2;
    let mut elda = Elda::with_config(cfg, Task::Mortality, seed);
    // The simulator refuses very short stays; fit at its minimum window
    // and resize — the fitted statistics are per-feature, not per-step.
    let mut cohort_cfg = CohortConfig::small(24, seed.wrapping_add(100));
    cohort_cfg.t_len = t_len.max(4);
    let cohort = Cohort::generate(cohort_cfg);
    let idx: Vec<usize> = (0..cohort.patients.len()).collect();
    elda.set_pipeline(Pipeline::fit(&cohort, &idx).with_t_len(t_len));
    Arc::new(elda)
}

/// Raw hourly rows (`NaN` = missing) for a simulated stay of `hours`
/// rows — generated independently of any model's window length.
fn stay_rows(hours: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut cfg = CohortConfig::small(10, seed);
    cfg.t_len = hours.max(4);
    let cohort = Cohort::generate(cfg);
    let p = &cohort.patients[0];
    (0..hours)
        .map(|t| (0..NUM_FEATURES).map(|f| p.value(t, f)).collect())
        .collect()
}

/// The batch path's verdict on `window` scored as an independent patient.
fn batch_score_window(model: &Elda, window: &[Vec<f32>]) -> f32 {
    let w = window.len();
    let mut grid = Vec::with_capacity(w * NUM_FEATURES);
    for row in window {
        grid.extend_from_slice(row);
    }
    let patient = patient_from_grid(
        0,
        grid,
        w,
        Outcome {
            los_days: 0.0,
            died: false,
        },
    );
    model.resized(w).predict_batch(&[patient])[0]
}

/// Streams `rows` through one session, asserting every per-step score
/// bitwise-equal to the batch reference over the same window. Returns
/// the streamed scores for cross-run comparisons.
fn assert_stream_matches_batch(model: &Arc<Elda>, rows: &[Vec<f32>], what: &str) -> Vec<f32> {
    let t_len = model.net().config().t_len;
    let mut session: StreamSession = model.open_stream();
    let mut streamed_scores = Vec::with_capacity(rows.len());
    for (k, row) in rows.iter().enumerate() {
        let streamed = session.append(row);
        let w = (k + 1).min(t_len);
        let reference = batch_score_window(model, &rows[k + 1 - w..=k]);
        assert_eq!(
            streamed.to_bits(),
            reference.to_bits(),
            "{what}: step {} (window {w}) streamed {streamed} vs batch {reference}",
            k + 1,
        );
        assert_eq!(session.steps(), k + 1);
        assert_eq!(session.window_len(), w);
        streamed_scores.push(streamed);
    }
    streamed_scores
}

#[test]
fn full_variant_matches_batch_through_prefix_and_sliding_regimes() {
    let model = tiny_model(EldaVariant::Full, 6, 3);
    // 15 rows against a 6-step window: covers k < t_len, k == t_len and
    // nine sliding-window evictions.
    let rows = stay_rows(15, 7);
    assert_stream_matches_batch(&model, &rows, "ELDA-Net full");
}

#[test]
fn time_only_variant_matches_batch() {
    let model = tiny_model(EldaVariant::TimeOnly, 5, 4);
    let rows = stay_rows(12, 8);
    assert_stream_matches_batch(&model, &rows, "ELDA-Net-T (no feature module)");
}

#[test]
fn no_time_module_variants_match_batch() {
    for (variant, what) in [
        (EldaVariant::FeatureBi, "ELDA-Net-F_bi (no time module)"),
        (
            EldaVariant::FeatureBiStar,
            "ELDA-Net-F_bi* (starred embedding)",
        ),
    ] {
        let model = tiny_model(variant, 4, 5);
        let rows = stay_rows(10, 9);
        assert_stream_matches_batch(&model, &rows, what);
    }
}

#[test]
fn one_hour_stay_matches_batch_even_with_time_attention() {
    // W = 1 exercises the degenerate time-interaction head (zero
    // context) on both the streaming and the resized batch path.
    let model = tiny_model(EldaVariant::Full, 6, 11);
    let rows = stay_rows(1, 12);
    assert_stream_matches_batch(&model, &rows, "one-hour stay");
}

#[test]
fn late_first_observations_flip_never_flags_mid_stay() {
    let model = tiny_model(EldaVariant::Full, 6, 13);
    let mut rows = stay_rows(14, 14);
    // Feature 5: unobserved for the first three hours, first seen at
    // hour 4 — the flip invalidates cached hidden states mid-window.
    for row in rows.iter_mut().take(3) {
        row[5] = f32::NAN;
    }
    rows[3][5] = 80.0;
    // Feature 7: never observed in the entire stay (V^m embedding on
    // every step, and the never-flag graph branch stays off the
    // all-zero fast path throughout).
    for row in rows.iter_mut() {
        row[7] = f32::NAN;
    }
    // Hour 1 entirely unobserved: forward-fill starts from nothing.
    rows[0].fill(f32::NAN);
    assert_stream_matches_batch(&model, &rows, "late/never observations");
}

#[test]
fn streamed_scores_are_bitwise_stable_across_thread_counts() {
    let model = tiny_model(EldaVariant::Full, 5, 17);
    let rows = stay_rows(11, 18);
    let prev = elda_tensor::pool::threads();
    elda_tensor::pool::set_threads(1);
    let narrow = assert_stream_matches_batch(&model, &rows, "1 thread");
    elda_tensor::pool::set_threads(4);
    let wide = assert_stream_matches_batch(&model, &rows, "4 threads");
    elda_tensor::pool::set_threads(prev);
    for (k, (a, b)) in narrow.iter().zip(&wide).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "step {}: 1-thread {a} vs 4-thread {b}",
            k + 1
        );
    }
}

#[test]
fn seeded_shape_and_missingness_sweep() {
    // Property-style sweep: window lengths down to 1, stays from shorter
    // than the window to 2×-plus-sliding, random extra missingness on
    // top of the simulator's — every (t_len, stay, seed) cell must hold
    // the bitwise contract for both module configurations.
    for (t_len, variant) in [
        (1, EldaVariant::Full),
        (2, EldaVariant::TimeOnly),
        (3, EldaVariant::Full),
        (5, EldaVariant::FeatureBi),
    ] {
        for seed in 0..2u64 {
            let model = tiny_model(variant, t_len, 20 + seed);
            let hours = t_len * 2 + 1;
            let mut rng = StdRng::seed_from_u64(40 + seed);
            let mut rows = stay_rows(hours, 30 + seed);
            for row in rows.iter_mut() {
                for v in row.iter_mut() {
                    if rng.gen_range(0..10u32) < 3 {
                        *v = f32::NAN;
                    }
                }
            }
            let what = format!("sweep t_len={t_len} variant={variant:?} seed={seed}");
            assert_stream_matches_batch(&model, &rows, &what);
        }
    }
}

#[test]
fn sessions_share_the_model_plan_cache() {
    // Two sessions on one model: the second must replay the first's
    // step/head plans (the capture cost is per model, not per session).
    let model = tiny_model(EldaVariant::Full, 4, 23);
    let rows = stay_rows(6, 24);
    let a = assert_stream_matches_batch(&model, &rows, "session a");
    let b = assert_stream_matches_batch(&model, &rows, "session b");
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.to_bits(), y.to_bits(), "sessions diverged on equal input");
    }
}
