//! The §III "Predictive Analytics" monitoring flow as assertions: scoring
//! partially observed stays (the future masked out) must be well-behaved
//! and, on average, track the patients' actual deterioration.

use elda_core::framework::FitConfig;
use elda_core::{Elda, EldaConfig, EldaVariant};
use elda_emr::{Cohort, CohortConfig, Patient, Task, NUM_FEATURES};

/// A copy of `patient` with every hour from `from_hour` on made missing.
fn truncate_to(patient: &Patient, from_hour: usize) -> Patient {
    let mut p = patient.clone();
    let t_len = p.values.len() / NUM_FEATURES;
    for t in from_hour..t_len {
        for f in 0..NUM_FEATURES {
            p.values[t * NUM_FEATURES + f] = f32::NAN;
        }
    }
    p
}

fn trained(seed: u64, t_len: usize, n: usize) -> (Cohort, Elda) {
    let mut cc = CohortConfig::small(n, seed);
    cc.t_len = t_len;
    let cohort = Cohort::generate(cc);
    let mut cfg = EldaConfig::variant(EldaVariant::TimeOnly, t_len);
    cfg.gru_hidden = 12;
    let mut elda = Elda::with_config(cfg, Task::Mortality, seed);
    elda.fit(
        &cohort,
        &FitConfig {
            epochs: 5,
            batch_size: 32,
            patience: None,
            threads: 1,
            ..Default::default()
        },
    );
    (cohort, elda)
}

#[test]
fn partial_stays_always_produce_valid_probabilities() {
    let (cohort, elda) = trained(201, 12, 150);
    for &i in &[0usize, 5, 17, 42] {
        for hour in [1usize, 4, 8, 12] {
            let partial = truncate_to(&cohort.patients[i], hour);
            let risk = elda.predict_proba(&partial);
            assert!(
                risk.is_finite() && (0.0..=1.0).contains(&risk),
                "patient {i} at hour {hour}: risk {risk}"
            );
        }
    }
}

#[test]
fn risk_tracks_deterioration_on_average() {
    // Among eventual non-survivors, late-stay risk estimates should on
    // average exceed early-stay estimates (severity builds over the stay);
    // among clearly stable survivors the drift should be smaller.
    let (cohort, elda) = trained(203, 12, 300);
    let mut drift_died = Vec::new();
    let mut drift_lived = Vec::new();
    for p in cohort.patients.iter().take(120) {
        let early = elda.predict_proba(&truncate_to(p, 4));
        let late = elda.predict_proba(p);
        if p.mortality {
            drift_died.push(late - early);
        } else {
            drift_lived.push(late - early);
        }
    }
    assert!(
        drift_died.len() >= 5,
        "need some non-survivors in the sample"
    );
    let mean_died = drift_died.iter().sum::<f32>() / drift_died.len() as f32;
    let mean_lived = drift_lived.iter().sum::<f32>() / drift_lived.len() as f32;
    assert!(
        mean_died > mean_lived,
        "risk should rise more for eventual non-survivors: died {mean_died:.3} vs lived {mean_lived:.3}"
    );
}

#[test]
fn full_observation_matches_untruncated_prediction() {
    // truncate_to(t_len) is the identity on the grid; predictions must match.
    let (cohort, elda) = trained(207, 10, 80);
    let p = &cohort.patients[3];
    let same = truncate_to(p, 10);
    assert_eq!(elda.predict_proba(p), elda.predict_proba(&same));
}

#[test]
fn alert_threshold_partitions_the_cohort_consistently() {
    let (cohort, mut elda) = trained(211, 10, 120);
    let risks: Vec<f32> = cohort
        .patients
        .iter()
        .take(40)
        .map(|p| elda.predict_proba(p))
        .collect();
    // pick the median risk as threshold: alerts must be exactly those above
    let mut sorted = risks.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    elda.alert_threshold = sorted[20];
    let alerts = cohort
        .patients
        .iter()
        .take(40)
        .filter(|p| elda.should_alert(p))
        .count();
    let expected = risks.iter().filter(|&&r| r >= elda.alert_threshold).count();
    assert_eq!(alerts, expected);
}

/// ISSUE 2 acceptance: training-health telemetry end to end. Both fits run
/// in one test fn because the non-finite sentinel the monitored trainer
/// arms is process-global.
#[test]
fn health_monitor_passes_normal_runs_and_flags_absurd_learning_rates() {
    use elda_obs::{HealthConfig, HealthStatus};

    let mut cc = CohortConfig::small(80, 42);
    cc.t_len = 8;
    let cohort = Cohort::generate(cc);
    let cfg = EldaConfig::variant(EldaVariant::TimeOnly, 8);

    // A normal run stays healthy: zero incidents.
    let mut elda = Elda::with_config(cfg.clone(), Task::Mortality, 42);
    let report = elda.fit(
        &cohort,
        &FitConfig {
            epochs: 3,
            batch_size: 16,
            patience: None,
            threads: 1,
            health: Some(HealthConfig::default()),
            ..Default::default()
        },
    );
    assert!(
        report.health_incidents.is_empty(),
        "healthy run flagged: {:?}",
        report.health_incidents
    );

    // An absurd learning rate is flagged as diverging or non-finite, with
    // the first offending epoch recorded on the incident.
    let mut elda = Elda::with_config(cfg, Task::Mortality, 42);
    let report = elda.fit(
        &cohort,
        &FitConfig {
            epochs: 4,
            batch_size: 16,
            lr: 10.0,
            patience: None,
            threads: 1,
            health: Some(HealthConfig::default()),
            ..Default::default()
        },
    );
    let flagged: Vec<_> = report
        .health_incidents
        .iter()
        .filter(|i| matches!(i.status, HealthStatus::Diverging | HealthStatus::NonFinite))
        .collect();
    assert!(
        !flagged.is_empty(),
        "lr=10 not flagged: {:?}",
        report.health_incidents
    );
    assert!(
        flagged.iter().all(|i| i.epoch < 4),
        "incident epoch out of range: {flagged:?}"
    );

    // leave the process-global sentinel disarmed for other tests
    elda_autodiff::sentinel::set_enabled(false);
    elda_autodiff::sentinel::clear();
}
