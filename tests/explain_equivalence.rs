//! Golden tests for the explain-plan path: `interpret_sample` replaying
//! through `PlanCache::explain_forward` must reproduce the retaining-tape
//! oracle `interpret_sample_tape` **bitwise** — risk, every α entry and
//! every β weight — across model variants, thread counts and both sides
//! of the never-flag graph branch. Plan-cache accounting rides along:
//! explain plans are keyed under their own tag, living beside (never in
//! place of) the lean score plans.

use elda_bench::{prepare, Scale};
use elda_core::infer::PlanCache;
use elda_core::interpret::{interpret_sample, interpret_sample_tape, Interpretation};
use elda_core::{EldaConfig, EldaNet, EldaVariant};
use elda_emr::{CohortPreset, Task, NUM_FEATURES};
use elda_nn::ParamStore;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_scale() -> Scale {
    Scale {
        n_patients: 60,
        t_len: 8,
        epochs: 1,
        seeds: 1,
        batch_size: 16,
    }
}

fn tiny_net(variant: EldaVariant, t_len: usize, seed: u64) -> (ParamStore, EldaNet) {
    let mut ps = ParamStore::new();
    let mut cfg = EldaConfig::variant(variant, t_len);
    cfg.embed_dim = 4;
    cfg.gru_hidden = 8;
    cfg.compression = 2;
    let net = EldaNet::new(&mut ps, cfg, &mut StdRng::seed_from_u64(seed));
    (ps, net)
}

fn assert_interp_bitwise(plan: &Interpretation, oracle: &Interpretation, what: &str) {
    assert_eq!(
        plan.risk.to_bits(),
        oracle.risk.to_bits(),
        "{what}: risk diverged: {} vs {}",
        plan.risk,
        oracle.risk
    );
    assert_eq!(
        plan.feature_attention.len(),
        oracle.feature_attention.len(),
        "{what}: α hour count"
    );
    for (t, (a, b)) in plan
        .feature_attention
        .iter()
        .zip(&oracle.feature_attention)
        .enumerate()
    {
        assert_eq!(a.shape(), b.shape(), "{what}: α shape at hour {t}");
        for (k, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{what}: α[{t}] entry {k} diverged: {x} vs {y}"
            );
        }
    }
    assert_eq!(
        plan.time_attention.len(),
        oracle.time_attention.len(),
        "{what}: β length"
    );
    for (k, (x, y)) in plan
        .time_attention
        .iter()
        .zip(&oracle.time_attention)
        .enumerate()
    {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: β[{k}] diverged: {x} vs {y}"
        );
    }
}

#[test]
fn explain_plan_matches_tape_oracle_across_variants() {
    let scale = small_scale();
    let prep = prepare(CohortPreset::PhysioNet2012, &scale, 21);
    for variant in [
        EldaVariant::Full,
        EldaVariant::TimeOnly,
        EldaVariant::FeatureBi,
    ] {
        let (ps, net) = tiny_net(variant, scale.t_len, 31);
        let cache = PlanCache::new();
        for (i, sample) in prep.samples.iter().take(4).enumerate() {
            // First call per variant captures the explain plan; the rest
            // replay. Both must match the retaining-tape oracle bitwise.
            let plan = interpret_sample(&net, &ps, sample, Task::Mortality, &cache);
            let oracle = interpret_sample_tape(&net, &ps, sample, Task::Mortality);
            let what = format!("{} sample {i}", variant.name());
            assert_interp_bitwise(&plan, &oracle, &what);
            // the variant's ablated components stay absent on both paths
            match variant {
                EldaVariant::TimeOnly => assert!(plan.feature_attention.is_empty(), "{what}"),
                EldaVariant::FeatureBi => assert!(plan.time_attention.is_empty(), "{what}"),
                _ => {
                    assert!(!plan.feature_attention.is_empty(), "{what}");
                    assert!(!plan.time_attention.is_empty(), "{what}");
                }
            }
        }
    }
}

#[test]
fn explain_replay_is_bitwise_stable_across_thread_counts() {
    let scale = small_scale();
    let prep = prepare(CohortPreset::PhysioNet2012, &scale, 22);
    let (ps, net) = tiny_net(EldaVariant::Full, scale.t_len, 32);
    let cache = PlanCache::new();
    let sample = &prep.samples[0];

    let first = interpret_sample(&net, &ps, sample, Task::Mortality, &cache); // captures
    let prev = elda_tensor::pool::threads();
    elda_tensor::pool::set_threads(4);
    let wide = interpret_sample(&net, &ps, sample, Task::Mortality, &cache); // replays
    elda_tensor::pool::set_threads(prev);
    assert_interp_bitwise(&wide, &first, "1 thread vs 4 threads");
    assert_eq!(cache.len(), 1, "replay must not re-capture");
}

#[test]
fn never_flag_branch_keys_separate_explain_plans() {
    let scale = small_scale();
    let prep = prepare(CohortPreset::PhysioNet2012, &scale, 23);
    let (ps, net) = tiny_net(EldaVariant::Full, scale.t_len, 33);

    // Both sides of the embedding's data-dependent branch: every flag
    // cleared (fast path) and a guaranteed never-observed feature.
    let mut all_observed = prep.samples[0].clone();
    all_observed.never = vec![0.0; NUM_FEATURES];
    let mut with_missing = prep.samples[0].clone();
    with_missing.never[0] = 1.0;

    let cache = PlanCache::new();
    for (sample, what) in [(&all_observed, "never=0"), (&with_missing, "never!=0")] {
        let plan = interpret_sample(&net, &ps, sample, Task::Mortality, &cache);
        let oracle = interpret_sample_tape(&net, &ps, sample, Task::Mortality);
        assert_interp_bitwise(&plan, &oracle, what);
    }
    assert_eq!(cache.len(), 2, "both graph keys cached separately");
}

#[test]
fn explain_plans_live_beside_score_plans_without_eviction() {
    let scale = small_scale();
    let prep = prepare(CohortPreset::PhysioNet2012, &scale, 24);
    let (ps, net) = tiny_net(EldaVariant::Full, scale.t_len, 34);
    let idx: Vec<usize> = (0..20).collect();
    let cache = PlanCache::new();

    let score = |cache: &PlanCache| {
        elda_core::infer::predict_probs(
            &net,
            &ps,
            &prep.samples,
            &idx,
            scale.t_len,
            Task::Mortality,
            7,
            cache,
        )
    };
    // chunks of 7,7,6 → two score plans; plus a batch-of-1 score plan
    // sharing its dims with the explain plan (tag is the discriminator).
    let before = score(&cache);
    let single = elda_core::infer::predict_probs(
        &net,
        &ps,
        &prep.samples,
        &[0],
        scale.t_len,
        Task::Mortality,
        1,
        &cache,
    );
    assert_eq!(cache.len(), 3, "score plans for shapes 7, 6 and 1");

    let explained = interpret_sample(&net, &ps, &prep.samples[0], Task::Mortality, &cache);
    assert_eq!(
        cache.len(),
        4,
        "the explain plan is keyed under its own tag beside the \
         batch-of-1 score plan, not in place of it"
    );
    assert_eq!(
        explained.risk.to_bits(),
        single[0].to_bits(),
        "explain risk is the predict risk"
    );

    // score traffic after explain traffic replays the untouched lean
    // plans: bitwise-identical output, no re-capture
    let after = score(&cache);
    for (i, (x, y)) in before.iter().zip(&after).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "score {i} diverged after explain");
    }
    assert_eq!(cache.len(), 4, "no plan was evicted or re-captured");
}
